"""An interactive OQL shell over the demo databases.

Run with ``python -m repro``. Commands:

====================  ==================================================
``<oql query>``       run it; print the result
``\\calc <term>``      evaluate a calculus term in the paper's notation
``\\explain <query>``  show the optimized plan with estimates
``\\explain analyze <query>``  run it; estimated vs actual rows per node
``\\trace <query>``    show the Table-3 normalization derivation
``\\plan <query>``     show translation, normal form and the plan
``\\define n as q``    define a named view
``:lint on|off``      toggle post-query lint diagnostics (default on)
``:profile on|off``   toggle tracing + the JSON query log (default off)
``:cache on|off|stats``  toggle the query cache / show its counters
``:stats [on|off|top]``  toggle fleet telemetry / show its digest
``:parallel on|off``  toggle partition-parallel execution
``:jit on|off``       toggle closure compilation of hot-path expressions
``\\extents``          list extents and sizes
``\\schema``           list classes and attributes
``\\help``             this text
``\\quit``             leave
====================  ==================================================
"""

from __future__ import annotations

import sys
from typing import Callable, Optional

from repro.calculus.parser import parse_calculus
from repro.db.database import Database
from repro.errors import ReproError
from repro.values import to_python


class Repl:
    """A line-oriented shell around one :class:`Database`."""

    def __init__(self, db: Database, out: Callable[[str], None] = print) -> None:
        self.db = db
        self.out = out
        self.running = True
        self.lint_enabled = True

    # -- command dispatch -------------------------------------------------------

    def handle(self, line: str) -> None:
        """Process one input line (used directly by the tests)."""
        line = line.strip()
        if not line:
            return
        try:
            if line.startswith("\\"):
                self._command(line)
            elif line.startswith(":"):
                self._command("\\" + line[1:])
            else:
                self._query(line)
        except ReproError as err:
            self.out(f"error: {err}")

    def _command(self, line: str) -> None:
        name, _, rest = line[1:].partition(" ")
        rest = rest.strip()
        if name in ("q", "quit", "exit"):
            self.running = False
        elif name == "help":
            self.out(__doc__ or "")
        elif name == "extents":
            for extent, size in sorted(self.db.catalog.extent_sizes().items()):
                self.out(f"  {extent}: {size} elements")
        elif name == "schema":
            for cls in self.db.schema.classes():
                attrs = ", ".join(f"{a}: {t}" for a, t in cls.attributes.items())
                extent = f" (extent {cls.extent})" if cls.extent else ""
                sup = f" extends {cls.superclass}" if cls.superclass else ""
                self.out(f"  class {cls.name}{sup}{extent}: {attrs}")
        elif name == "explain":
            if rest.startswith("analyze "):
                self.out(self.db.explain(rest[len("analyze "):].strip(), analyze=True))
            else:
                self.out(self.db.explain(rest))
        elif name == "trace":
            from repro.normalize import normalize_with_trace

            _, trace = normalize_with_trace(self.db.translate(rest))
            self.out(trace.render())
        elif name == "plan":
            result = self.db.run_detailed(rest)
            self.out(result.pipeline_report())
        elif name == "calc":
            value = self.db.run_calculus(parse_calculus(rest))
            self.out(repr(to_python(value)))
        elif name == "lint":
            if rest == "on":
                self.lint_enabled = True
            elif rest == "off":
                self.lint_enabled = False
            elif rest:
                self.out("usage: :lint on|off")
                return
            self.out(f"lint is {'on' if self.lint_enabled else 'off'}")
        elif name == "profile":
            if rest == "on":
                self.db.profile(True, sink=lambda line: self.out("  " + line))
            elif rest == "off":
                self.db.profile(False)
            elif rest:
                self.out("usage: :profile on|off")
                return
            self.out(f"profile is {'on' if self.db.tracer.enabled else 'off'}")
        elif name == "cache":
            if rest == "on":
                self.db.enable_cache()
            elif rest == "off":
                self.db.disable_cache()
            elif rest == "stats":
                if self.db.cache is None:
                    self.out("cache is off")
                else:
                    for key, value in sorted(self.db.cache.stats_dict().items()):
                        self.out(f"  {key}: {value}")
                return
            elif rest:
                self.out("usage: :cache on|off|stats")
                return
            self.out(f"cache is {'on' if self.db.cache is not None else 'off'}")
        elif name == "parallel":
            if rest == "on":
                self.db.enable_parallel()
            elif rest == "off":
                self.db.disable_parallel()
            elif rest:
                self.out("usage: :parallel on|off")
                return
            if self.db.parallel is not None:
                self.out(f"parallel is on ({self.db.parallel.max_workers} workers)")
            else:
                self.out("parallel is off")
        elif name == "jit":
            if rest == "on":
                self.db.enable_jit()
            elif rest == "off":
                self.db.disable_jit()
            elif rest:
                self.out("usage: :jit on|off")
                return
            self.out(f"jit is {'on' if self.db.jit is not None else 'off'}")
        elif name == "stats":
            if rest == "on":
                self.db.enable_telemetry()
            elif rest == "off":
                self.db.disable_telemetry()
            elif rest in ("", "top"):
                if self.db.telemetry is None:
                    self.out("telemetry is off — :stats on to enable")
                else:
                    from repro.obs.telemetry.instrument import summary_lines

                    for line in summary_lines(self.db.telemetry, db=self.db):
                        self.out("  " + line)
                return
            else:
                self.out("usage: :stats [on|off|top]")
                return
            self.out(
                f"telemetry is {'on' if self.db.telemetry is not None else 'off'}"
            )
        elif name == "define":
            view_name, _, body = rest.partition(" as ")
            if not body:
                self.out("usage: \\define <name> as <query>")
                return
            self.db.define(view_name.strip(), body.strip())
            self.out(f"defined view {view_name.strip()}")
        else:
            self.out(f"unknown command \\{name} — try \\help")

    def _query(self, oql: str) -> None:
        value = self.db.run(oql)
        self.out(repr(to_python(value)))
        if self.lint_enabled:
            self._report_lint(oql)

    def _report_lint(self, oql: str) -> None:
        """Print lint findings after a successful query.

        The query already ran, so even error-severity findings are
        advisory here; lint failures must never sink the result."""
        try:
            diagnostics = self.db.lint(oql)
        except Exception:  # pragma: no cover - defensive
            return
        for diag in diagnostics:
            self.out(f"  {diag}")
            if diag.hint:
                self.out(f"    = help: {diag.hint}")

    # -- loop ----------------------------------------------------------------------

    def run(self, stdin=None) -> None:
        stream = stdin if stdin is not None else sys.stdin
        self.out("monoid calculus OQL shell — \\help for commands, \\quit to exit")
        while self.running:
            self.out("oql> ")
            line = stream.readline()
            if not line:
                break
            self.handle(line)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro``."""
    args = list(sys.argv[1:] if argv is None else argv)
    from repro.db.database import demo_company_database, demo_travel_database

    if args and args[0] == "company":
        db = demo_company_database()
    else:
        db = demo_travel_database()
    Repl(db).run()
    return 0
