"""Structured query logging: one JSON line per executed query.

Opt-in via :meth:`Database.profile <repro.db.database.Database.profile>`
(or ``:profile on`` in the REPL). Each entry carries everything needed
to find a regression after the fact without storing the query text
itself: a wall-clock ``ts`` stamp, a stable hash of the OQL, the engine
that answered it, phase timings from the same
:class:`~repro.obs.tracer.TraceSpan` tree the tracer records, the
executor's row counters, and the normalizer's rule-fire counts.

Timing sources: every *duration* in an entry (``total_ms``,
``phases_ms``) comes from the tracer's ``time.perf_counter`` spans;
``ts`` is the **only** wall-clock (``time.time``) field in the
observability layer — it stamps when the event happened, never how
long anything took (the timing-source regression test enforces this
split repo-wide).

A ``slow_ms`` threshold marks entries ``"slow": true`` when the whole
query (not just execution) exceeded it — the usual first filter when
tailing the log. Entry schema in ``docs/OBSERVABILITY.md``.

Logs can stream to a file with size-based rotation: give ``path`` and
``max_bytes`` and the log rolls ``query.log -> query.log.1 -> ...``
before a write would cross the limit, keeping ``backups`` old files
(oldest deleted). Rotation never splits an entry across files.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Any, Callable, Optional

from repro.obs.tracer import TraceSpan


def oql_fingerprint(oql: str) -> str:
    """A short stable identifier for one query text (sha256 prefix)."""
    return hashlib.sha256(oql.strip().encode("utf-8")).hexdigest()[:12]


def query_log_entry(
    result: Any, span: Optional[TraceSpan], slow_ms: Optional[float] = None
) -> dict[str, Any]:
    """Build the JSON-ready log entry for one finished query.

    ``result`` is a :class:`~repro.db.database.QueryResult`; ``span``
    the query's root trace span (None degrades to a timing-less entry).
    """
    entry: dict[str, Any] = {
        "event": "query",
        # Wall clock by design: a log reader correlates entries with
        # the outside world. All durations stay on perf_counter.
        "ts": round(time.time(), 6),
        "oql_sha256": oql_fingerprint(result.oql),
        "engine": result.engine,
    }
    if span is not None:
        entry["total_ms"] = round(span.duration_ms, 3)
        entry["phases_ms"] = {
            name: round(ms, 3) for name, ms in span.phase_times_ms().items()
        }
    if result.stats is not None:
        entry["stats"] = result.stats.as_dict()
    cache = getattr(result, "cache", None)
    if cache:
        entry["cache"] = dict(cache)
    entry["rule_fires"] = dict(sorted(result.trace.rule_counts().items()))
    if slow_ms is not None and span is not None:
        entry["slow"] = span.duration_ms >= slow_ms
    return entry


class QueryLog:
    """Accumulates query entries and optionally streams them as JSONL.

    ``sink`` is any ``str -> None`` callable (e.g. ``print``, a file's
    ``write`` wrapped to add newlines, or a REPL's output function);
    when None the entries are only kept on :attr:`entries`. ``path``
    additionally appends each line to a file, rotated before any write
    that would push the file past ``max_bytes`` (``None`` disables
    rotation); ``backups`` old files are kept as ``path.1..path.N``.
    """

    def __init__(
        self,
        sink: Optional[Callable[[str], None]] = None,
        slow_ms: Optional[float] = None,
        path: Optional[str] = None,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        self.sink = sink
        self.slow_ms = slow_ms
        self.path = os.fspath(path) if path is not None else None
        self.max_bytes = max_bytes
        self.backups = max(0, backups)
        #: file rollovers performed so far
        self.rotations = 0
        self.entries: list[dict[str, Any]] = []
        # One lock covers entries, the sink, and the rotate+append file
        # sequence: without it, concurrent Database.run callers sharing
        # a profile() log could interleave half-written lines or race a
        # rotation against an in-flight append (losing the line into the
        # just-rolled file). RLock because rotate() is also public.
        self._lock = threading.RLock()

    def record(self, result: Any, span: Optional[TraceSpan]) -> dict[str, Any]:
        """Append (and emit) the entry for one finished query.

        Thread-safe: concurrent recorders serialize on an internal lock
        so JSONL lines never interleave and rotation never splits or
        drops an entry.
        """
        entry = query_log_entry(result, span, self.slow_ms)
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self.entries.append(entry)
            if self.sink is not None:
                self.sink(line)
            if self.path is not None:
                self._write_line(line)
        registry = _telemetry_registry()
        if registry is not None:
            from repro.obs.telemetry.instrument import record_querylog_entry

            record_querylog_entry(registry, entry)
        return entry

    # -- file sink with size-based rotation ---------------------------------------

    def _write_line(self, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        if self.max_bytes is not None:
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size > 0 and size + len(data) > self.max_bytes:
                self.rotate()
        with open(self.path, "ab") as handle:
            handle.write(data)

    def rotate(self) -> None:
        """Roll ``path`` to ``path.1`` (shifting older backups up, the
        oldest falling off); the next write starts a fresh file."""
        if self.path is None:
            return
        with self._lock:
            oldest = f"{self.path}.{self.backups}"
            if self.backups and os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            if os.path.exists(self.path):
                if self.backups:
                    os.replace(self.path, f"{self.path}.1")
                else:
                    os.remove(self.path)
            self.rotations += 1
        registry = _telemetry_registry()
        if registry is not None:
            from repro.obs.telemetry.instrument import record_querylog_rotation

            record_querylog_rotation(registry)

    def log_files(self) -> list[str]:
        """The current file plus existing backups, newest first."""
        if self.path is None:
            return []
        files = [self.path] if os.path.exists(self.path) else []
        for i in range(1, self.backups + 1):
            backup = f"{self.path}.{i}"
            if os.path.exists(backup):
                files.append(backup)
        return files

    def slow_queries(self) -> list[dict[str, Any]]:
        """Entries that crossed the ``slow_ms`` threshold."""
        return [entry for entry in self.entries if entry.get("slow")]

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()


def _telemetry_registry():
    """The active telemetry registry, or None (lazy import: the query
    log must not drag the telemetry package in when telemetry is off)."""
    import sys

    registry_mod = sys.modules.get("repro.obs.telemetry.registry")
    if registry_mod is None:
        return None
    return registry_mod.current_registry()
