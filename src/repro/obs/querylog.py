"""Structured query logging: one JSON line per executed query.

Opt-in via :meth:`Database.profile <repro.db.database.Database.profile>`
(or ``:profile on`` in the REPL). Each entry carries everything needed
to find a regression after the fact without storing the query text
itself: a stable hash of the OQL, the engine that answered it, phase
timings from the same :class:`~repro.obs.tracer.TraceSpan` tree the
tracer records, the executor's row counters, and the normalizer's
rule-fire counts.

A ``slow_ms`` threshold marks entries ``"slow": true`` when the whole
query (not just execution) exceeded it — the usual first filter when
tailing the log. Entry schema in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Optional

from repro.obs.tracer import TraceSpan


def oql_fingerprint(oql: str) -> str:
    """A short stable identifier for one query text (sha256 prefix)."""
    return hashlib.sha256(oql.strip().encode("utf-8")).hexdigest()[:12]


def query_log_entry(
    result: Any, span: Optional[TraceSpan], slow_ms: Optional[float] = None
) -> dict[str, Any]:
    """Build the JSON-ready log entry for one finished query.

    ``result`` is a :class:`~repro.db.database.QueryResult`; ``span``
    the query's root trace span (None degrades to a timing-less entry).
    """
    entry: dict[str, Any] = {
        "event": "query",
        "oql_sha256": oql_fingerprint(result.oql),
        "engine": result.engine,
    }
    if span is not None:
        entry["total_ms"] = round(span.duration_ms, 3)
        entry["phases_ms"] = {
            name: round(ms, 3) for name, ms in span.phase_times_ms().items()
        }
    if result.stats is not None:
        entry["stats"] = result.stats.as_dict()
    cache = getattr(result, "cache", None)
    if cache:
        entry["cache"] = dict(cache)
    entry["rule_fires"] = dict(sorted(result.trace.rule_counts().items()))
    if slow_ms is not None and span is not None:
        entry["slow"] = span.duration_ms >= slow_ms
    return entry


class QueryLog:
    """Accumulates query entries and optionally streams them as JSONL.

    ``sink`` is any ``str -> None`` callable (e.g. ``print``, a file's
    ``write`` wrapped to add newlines, or a REPL's output function);
    when None the entries are only kept on :attr:`entries`.
    """

    def __init__(
        self,
        sink: Optional[Callable[[str], None]] = None,
        slow_ms: Optional[float] = None,
    ) -> None:
        self.sink = sink
        self.slow_ms = slow_ms
        self.entries: list[dict[str, Any]] = []

    def record(self, result: Any, span: Optional[TraceSpan]) -> dict[str, Any]:
        """Append (and emit) the entry for one finished query."""
        entry = query_log_entry(result, span, self.slow_ms)
        self.entries.append(entry)
        if self.sink is not None:
            self.sink(json.dumps(entry, sort_keys=True))
        return entry

    def slow_queries(self) -> list[dict[str, Any]]:
        """Entries that crossed the ``slow_ms`` threshold."""
        return [entry for entry in self.entries if entry.get("slow")]

    def clear(self) -> None:
        self.entries.clear()
