"""Nested wall-clock spans for the query pipeline.

A :class:`Tracer` records one :class:`TraceSpan` tree per traced
region. :meth:`Tracer.span` is a context manager::

    tracer = Tracer(enabled=True)
    with tracer.span("query", oql="count(Cities)"):
        with tracer.span("parse"):
            ...
        with tracer.span("execute"):
            ...

When the tracer is disabled (the default for a fresh
:class:`~repro.db.database.Database`), ``span`` returns a shared no-op
context manager: no span objects are allocated, no clock is read, and
the traced code runs exactly as if the ``with`` statement were absent.
This is what keeps ``Database.run`` byte-identical to the untraced
pipeline when observability is off.

Spans export two ways: :meth:`Tracer.to_events` flattens every finished
root into a list of JSON-ready event dicts (one per span, with a
``parent`` index), and :func:`render_span` draws one root as an
indented tree with durations — the form ``benchmarks/report.py`` and
the REPL print. The schema is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Every phase of the query pipeline, in pipeline order. This is the
#: single source of truth shared by the tracer, the cache's skip logic
#: (a compile-cache hit marks the skipped subset as cached, see
#: :meth:`Tracer.mark_cached`) and the benchmark report — so a phase
#: renamed here renames everywhere.
PIPELINE_PHASES = (
    "lint",
    "parse",
    "translate",
    "typecheck",
    "normalize",
    "plan",
    "optimize",
    "jit",
    "execute",
)

#: The front half a compilation-cache hit skips (``execute`` always
#: runs; ``lint`` is a per-call flag, honored even on hits). ``jit``
#: only appears when closure compilation is enabled (``REPRO_JIT``).
COMPILE_PHASES = (
    "parse",
    "translate",
    "typecheck",
    "normalize",
    "plan",
    "optimize",
    "jit",
)


@dataclass
class TraceSpan:
    """One timed region: a name, a duration, metadata and children."""

    name: str
    start: float  # perf_counter seconds, comparable within one process
    duration: float = 0.0  # seconds; 0.0 while the span is still open
    meta: dict[str, Any] = field(default_factory=dict)
    children: list["TraceSpan"] = field(default_factory=list)

    @property
    def duration_ms(self) -> float:
        return self.duration * 1e3

    def child(self, name: str) -> Optional["TraceSpan"]:
        """The first direct child called ``name``, or None."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def phase_times_ms(self) -> dict[str, float]:
        """Direct children as a ``{name: milliseconds}`` mapping.

        Repeated phase names accumulate (e.g. two ``execute`` attempts).
        """
        out: dict[str, float] = {}
        for span in self.children:
            out[span.name] = out.get(span.name, 0.0) + span.duration_ms
        return out

    def to_dict(self) -> dict[str, Any]:
        """Nested JSON-ready form of this span subtree."""
        out: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _NullSpanContext:
    """The shared do-nothing context manager used while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """Collects nested spans; a null object when ``enabled`` is False.

    >>> tracer = Tracer(enabled=True)
    >>> with tracer.span("query") as q:
    ...     with tracer.span("parse"):
    ...         pass
    >>> [child.name for child in tracer.roots[-1].children]
    ['parse']
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: finished top-level spans, oldest first
        self.roots: list[TraceSpan] = []
        # The open-span stack is thread-local: two threads tracing
        # through one shared Tracer must each see their own nesting, or
        # a span opened on thread A would adopt thread B's children and
        # the pop order would corrupt both trees. ``roots`` stays shared
        # (guarded by ``_roots_lock``) so every thread's finished
        # top-level spans land in one exportable list.
        self._stacks = threading.local()
        self._roots_lock = threading.Lock()

    @property
    def _stack(self) -> list[TraceSpan]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def span(self, name: str, **meta: Any):
        """A context manager timing ``name``; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return self._timed(name, meta)

    @contextmanager
    def _timed(self, name: str, meta: dict[str, Any]) -> Iterator[TraceSpan]:
        span = TraceSpan(name, time.perf_counter(), meta=dict(meta))
        stack = self._stack
        parent = stack[-1] if stack else None
        stack.append(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.start
            stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                with self._roots_lock:
                    self.roots.append(span)

    def attach(self, name: str, start: float, duration: float, **meta: Any) -> None:
        """Attach an already-measured span under the current open span.

        For work timed on another thread (e.g. a parallel partition
        worker): the worker records ``perf_counter`` start/duration
        itself, and the coordinating thread attaches the finished span
        to its own open trace. No-op while tracing is off.
        """
        if not self.enabled:
            return
        span = TraceSpan(name, start, duration=duration, meta=dict(meta))
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self.roots.append(span)

    def mark_cached(self, *names: str) -> None:
        """Record zero-duration spans for phases a cache hit skipped.

        Without this, a compile-cache hit would make ``parse`` …
        ``optimize`` silently vanish from the trace tree; instead each
        skipped phase appears with ``meta={"cached": True}`` and renders
        as ``(cached)``. No-op while tracing is off.
        """
        if not self.enabled:
            return
        stack = self._stack
        parent = stack[-1] if stack else None
        now = time.perf_counter()
        for name in names:
            span = TraceSpan(name, now, meta={"cached": True})
            if parent is not None:
                parent.children.append(span)
            else:
                with self._roots_lock:
                    self.roots.append(span)

    def reset(self) -> None:
        """Drop every finished span (open spans are unaffected)."""
        self.roots.clear()

    def to_events(self) -> list[dict[str, Any]]:
        """Every finished span as a flat, JSON-ready event list.

        Events appear in pre-order; ``parent`` is the index of the
        enclosing span's event (None for roots) and ``start_ms`` is
        relative to the first recorded root.
        """
        events: list[dict[str, Any]] = []
        if not self.roots:
            return events
        epoch = self.roots[0].start

        def walk(span: TraceSpan, parent: Optional[int]) -> None:
            index = len(events)
            event: dict[str, Any] = {
                "name": span.name,
                "start_ms": round((span.start - epoch) * 1e3, 6),
                "duration_ms": round(span.duration_ms, 6),
                "parent": parent,
            }
            if span.meta:
                event["meta"] = dict(span.meta)
            events.append(event)
            for child in span.children:
                walk(child, index)

        for root in self.roots:
            walk(root, None)
        return events

    def render(self) -> str:
        """All finished roots as indented trees, one line per span."""
        return "\n".join(render_span(root) for root in self.roots)


def render_span(span: TraceSpan, indent: int = 0) -> str:
    """One span subtree as an indented tree with durations."""
    pad = "  " * indent
    if span.meta.get("cached"):
        lines = [f"{pad}{span.name:<12}  (cached)"]
    else:
        lines = [f"{pad}{span.name:<12} {span.duration_ms:9.3f} ms"]
    lines.extend(render_span(child, indent + 1) for child in span.children)
    return "\n".join(lines)
