"""``python -m repro explain`` — batch EXPLAIN [ANALYZE] for OQL files.

Files hold ``;``-separated queries (same conventions as ``repro lint``:
``--`` comments, strings may contain semicolons). Each query is
explained against a demo database — ``--analyze`` actually runs it and
reports estimated vs actual cardinalities, per-node wall time and the
cost model's q-error; ``--json`` emits the same documents as one JSON
array (one element per file) for machine consumption, e.g. as a CI
build artifact.

Statistics are collected (``Database.analyze()``) before explaining so
the estimates are the cost model's best, not its defaults; ``--no-stats``
shows the default guesses instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Optional

from repro.db.database import Database
from repro.errors import ReproError
from repro.lint.cli import split_queries


def _make_database(schema_name: str) -> Database:
    from repro.db.database import demo_company_database, demo_travel_database

    if schema_name == "company":
        return demo_company_database()
    return demo_travel_database()


def main(argv: Optional[list[str]] = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Explain (and optionally run) every query in OQL files.",
    )
    parser.add_argument("files", nargs="+", help="OQL files (';'-separated queries)")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="execute each query and report actual cardinalities and timings",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON array of explain documents instead of text",
    )
    parser.add_argument(
        "--schema",
        choices=("travel", "company"),
        default="travel",
        help="demo database to explain against (default: travel)",
    )
    parser.add_argument(
        "--no-stats",
        action="store_true",
        help="skip Database.analyze(): estimate with the default guesses",
    )
    args = parser.parse_args(argv)

    db = _make_database(args.schema)
    if not args.no_stats:
        db.analyze()

    documents = []
    exit_code = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as err:
            out(f"error: cannot read {path}: {err}")
            exit_code = 1
            continue
        file_docs = []
        for _, _, text in split_queries(source):
            try:
                doc = db.explain_data(text, analyze=args.analyze)
            except ReproError as err:
                doc = {
                    "oql": text.strip(),
                    "analyzed": args.analyze,
                    "engine": None,
                    "plan": None,
                    "note": f"{type(err).__name__}: {err}",
                }
                exit_code = 1
            file_docs.append(doc)
        documents.append({"file": path, "queries": file_docs})

    if args.json:
        out(json.dumps(documents, indent=2, sort_keys=True))
        return exit_code

    from repro.obs.explain import render_explain

    for file_doc in documents:
        out(f"== {file_doc['file']}")
        for doc in file_doc["queries"]:
            out(render_explain(doc))
            out("")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
