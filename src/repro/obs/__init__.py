"""repro.obs — observability for the query pipeline.

Three layers, all opt-in and all zero-cost when off:

- **phase spans** (:mod:`repro.obs.tracer`): nested wall-clock timings
  for parse → translate → typecheck → normalize → plan → optimize →
  execute, recorded by :class:`~repro.db.database.Database` per query;
- **per-operator metrics** (:mod:`repro.obs.metrics`): rows, timings
  and probe counts for every physical plan node, collected by the
  :class:`~repro.algebra.physical.Executor`;
- **EXPLAIN ANALYZE** (:mod:`repro.obs.explain`) and the **query log**
  (:mod:`repro.obs.querylog`): estimated-vs-actual plan reports and
  structured JSONL query records built from the two layers above;
- **fleet telemetry** (:mod:`repro.obs.telemetry`): a process-wide
  metrics registry (counters, gauges, log-bucket histograms, a
  hot-query fingerprint table) with Prometheus/OTLP/StatsD exporters
  and a ``/metrics`` HTTP endpoint. Deliberately *not* imported here —
  ``import repro.obs.telemetry`` (or ``Database(telemetry=True)``)
  pulls it in; the default-off query path never loads it.

See ``docs/OBSERVABILITY.md`` for schemas and a walkthrough.
"""

from repro.obs.explain import plan_to_dict, q_error, render_explain, summarize
from repro.obs.metrics import NodeSnapshot, OperatorMetrics, PlanMetrics
from repro.obs.querylog import QueryLog, oql_fingerprint, query_log_entry
from repro.obs.tracer import Tracer, TraceSpan, render_span

__all__ = [
    "NodeSnapshot",
    "OperatorMetrics",
    "PlanMetrics",
    "QueryLog",
    "TraceSpan",
    "Tracer",
    "oql_fingerprint",
    "plan_to_dict",
    "q_error",
    "query_log_entry",
    "render_explain",
    "render_span",
    "summarize",
]
