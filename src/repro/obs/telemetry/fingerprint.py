"""Query fingerprinting: grouping alpha-equivalent queries for telemetry.

A *fingerprint* identifies what a query **means**, not how it was
spelled: it is a short hash of the canonical alpha-form from
:func:`repro.cache.keys.canonical_term`, so ``select distinct x.name
from x in Cities`` and its ``y``-spelled twin share one fingerprint
(the same equivalence the compiled-query cache keys on). Fleet
telemetry wants exactly this grouping — "which *query shapes* dominate
runtime" — where the raw text hash the query log records
(:func:`repro.obs.querylog.oql_fingerprint`) would split one hot query
into per-spelling shards.

:class:`FingerprintTable` keeps bounded per-fingerprint aggregates
(count, total/max latency, rows, errors, index probes) and serves the
top-K hot-query view the CLI, the REPL ``:stats`` command and the
``QL402`` advisor read. When full it evicts the entry with the least
accumulated time, keeping the hot set by construction.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.calculus.ast import Term


def fingerprint_term(term: Term) -> str:
    """A short stable identifier for a query's canonical alpha-form.

    Two terms get the same fingerprint iff they are alpha-equivalent
    (structural equality of :func:`~repro.cache.keys.canonical_term`
    outputs; the hash is over the canonical term's deterministic repr).
    """
    from repro.cache.keys import canonical_term

    canonical = canonical_term(term)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()[:12]


@dataclass
class QueryStats:
    """Aggregates for one query fingerprint."""

    fingerprint: str
    #: the first spelling seen — a human-readable exemplar of the group
    example_oql: str
    count: int = 0
    errors: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    rows: int = 0
    index_probes: int = 0
    engines: dict[str, int] = field(default_factory=dict)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "example_oql": self.example_oql,
            "count": self.count,
            "errors": self.errors,
            "total_ms": round(self.total_seconds * 1e3, 3),
            "mean_ms": round(self.mean_seconds * 1e3, 3),
            "max_ms": round(self.max_seconds * 1e3, 3),
            "rows": self.rows,
            "index_probes": self.index_probes,
            "engines": dict(sorted(self.engines.items())),
        }


class FingerprintTable:
    """Thread-safe bounded map of fingerprint -> :class:`QueryStats`."""

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._stats: dict[str, QueryStats] = {}

    def record(
        self,
        fingerprint: str,
        oql: str,
        seconds: float,
        rows: int = 0,
        engine: Optional[str] = None,
        index_probes: int = 0,
        error: bool = False,
    ) -> QueryStats:
        with self._lock:
            entry = self._stats.get(fingerprint)
            if entry is None:
                entry = self._stats[fingerprint] = QueryStats(
                    fingerprint, oql.strip()
                )
                if len(self._stats) > self.max_entries:
                    # evict the coldest entry (least accumulated time),
                    # never the one we just created
                    coldest = min(
                        (s for s in self._stats.values() if s is not entry),
                        key=lambda s: s.total_seconds,
                    )
                    del self._stats[coldest.fingerprint]
            entry.count += 1
            entry.total_seconds += seconds
            entry.max_seconds = max(entry.max_seconds, seconds)
            entry.rows += rows
            entry.index_probes += index_probes
            if error:
                entry.errors += 1
            if engine:
                entry.engines[engine] = entry.engines.get(engine, 0) + 1
            return entry

    def get(self, fingerprint: str) -> Optional[QueryStats]:
        with self._lock:
            return self._stats.get(fingerprint)

    def top(self, k: int = 10) -> list[QueryStats]:
        """The K fingerprints with the most accumulated time, hottest first."""
        with self._lock:
            entries = sorted(
                self._stats.values(),
                key=lambda s: (-s.total_seconds, s.fingerprint),
            )
            return entries[:k]

    def total_seconds(self) -> float:
        with self._lock:
            return sum(s.total_seconds for s in self._stats.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._stats)

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()


def render_top(entries: list[QueryStats], total_seconds: float) -> list[str]:
    """The hot-query table as aligned text lines (CLI / REPL view)."""
    if not entries:
        return ["(no queries recorded)"]
    lines = [
        f"{'fingerprint':<14}{'count':>7}{'total_ms':>10}{'mean_ms':>9}"
        f"{'max_ms':>9}{'rows':>8}{'share':>7}  query"
    ]
    for entry in entries:
        share = entry.total_seconds / total_seconds if total_seconds else 0.0
        oql = entry.example_oql
        if len(oql) > 48:
            oql = oql[:45] + "..."
        lines.append(
            f"{entry.fingerprint:<14}{entry.count:>7}"
            f"{entry.total_seconds * 1e3:>10.2f}"
            f"{entry.mean_seconds * 1e3:>9.3f}"
            f"{entry.max_seconds * 1e3:>9.3f}"
            f"{entry.rows:>8}{share:>6.0%}  {oql}"
        )
    return lines
