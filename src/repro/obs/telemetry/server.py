"""A stdlib ``/metrics`` endpoint for Prometheus scrapers.

No dependencies beyond ``http.server``: a :class:`MetricsServer` wraps
a ``ThreadingHTTPServer`` serving

- ``/metrics`` — Prometheus text exposition (the scrape target);
- ``/metrics.json`` — the OTLP-style JSON document;
- ``/healthz`` — liveness probe (``ok``).

``port=0`` binds an ephemeral port (tests use this; :attr:`port` tells
you what was bound). :meth:`start` serves from a daemon thread so a
process can keep answering queries while being scraped — the registry
is already thread-safe, so a scrape racing a query burst observes a
consistent snapshot.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.obs.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    otlp_text,
    prometheus_text,
)
from repro.obs.telemetry.registry import MetricsRegistry, get_registry


def _make_handler(registry: MetricsRegistry) -> type:
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format: str, *args: object) -> None:
            pass  # scrapes are high-frequency; stay quiet

        def _respond(self, body: str, content_type: str, status: int = 200) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._respond(prometheus_text(registry), PROMETHEUS_CONTENT_TYPE)
            elif path == "/metrics.json":
                self._respond(otlp_text(registry), "application/json")
            elif path == "/healthz":
                self._respond("ok\n", "text/plain; charset=utf-8")
            else:
                self._respond("not found\n", "text/plain; charset=utf-8", 404)

    return Handler


class MetricsServer:
    """Serves one registry's metrics over HTTP until stopped."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else get_registry()
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self.registry)
        )
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Serve from a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
