"""Exporters: registry snapshots in the three wire formats real
monitoring stacks ingest.

- :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, one sample per line,
  histograms as cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``. This is what the ``/metrics`` endpoint serves and what
  :mod:`repro.obs.telemetry.promparse` strictly re-parses in tests.
- :func:`otlp_json` — an OTLP-style (OpenTelemetry protocol) JSON
  document: ``resourceMetrics -> scopeMetrics -> metrics`` with
  ``sum``/``gauge``/``histogram`` data points. The hot-query table
  rides along under the scope's ``attributes`` is deliberately *not*
  done — it is attached as a dedicated ``repro.hot_queries`` metric of
  per-fingerprint data points instead, keeping the document pure data.
- :func:`statsd_lines` — StatsD line protocol with DogStatsD-style
  ``|#k:v`` tags: counters as ``|c``, gauges as ``|g``, histograms as
  derived ``.count``/``.sum_ms``/``.p50/.p90/.p99`` timer gauges
  (StatsD has no native snapshot histogram).

All three are pure functions of :meth:`MetricsRegistry.collect`'s
snapshot — deterministic output ordering (families and samples sorted)
so scrapes diff cleanly across builds.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Optional

from repro.obs.telemetry.registry import (
    FamilySnapshot,
    HistogramData,
    MetricsRegistry,
)

# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: The content type a Prometheus scraper expects from /metrics.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _sample_line(name: str, pairs: list[tuple[str, str]], value: float) -> str:
    return f"{name}{_label_block(pairs)} {_fmt_value(value)}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.collect():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        samples = sorted(family.samples, key=lambda sample: sample[0])
        for label_values, data in samples:
            pairs = list(zip(family.label_names, label_values))
            if isinstance(data, HistogramData):
                cumulative = 0
                for bound, count in zip(data.bounds, data.counts):
                    cumulative += count
                    lines.append(
                        _sample_line(
                            family.name + "_bucket",
                            pairs + [("le", _fmt_value(bound))],
                            cumulative,
                        )
                    )
                lines.append(
                    _sample_line(
                        family.name + "_bucket",
                        pairs + [("le", "+Inf")],
                        data.count,
                    )
                )
                lines.append(
                    _sample_line(family.name + "_sum", pairs, data.sum)
                )
                lines.append(
                    _sample_line(family.name + "_count", pairs, data.count)
                )
            else:
                lines.append(_sample_line(family.name, pairs, data))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# OTLP-style JSON
# ---------------------------------------------------------------------------


def _otlp_attributes(pairs: list[tuple[str, str]]) -> list[dict[str, Any]]:
    return [
        {"key": key, "value": {"stringValue": value}} for key, value in pairs
    ]


def _otlp_metric(family: FamilySnapshot, now_ns: int) -> dict[str, Any]:
    metric: dict[str, Any] = {
        "name": family.name,
        "description": family.help,
        "unit": "s" if family.name.endswith("_seconds") else "1",
    }
    points = []
    for label_values, data in sorted(family.samples, key=lambda s: s[0]):
        pairs = list(zip(family.label_names, label_values))
        point: dict[str, Any] = {
            "attributes": _otlp_attributes(pairs),
            "timeUnixNano": str(now_ns),
        }
        if isinstance(data, HistogramData):
            point.update(
                count=str(data.count),
                sum=data.sum,
                bucketCounts=[str(c) for c in data.counts],
                explicitBounds=list(data.bounds),
            )
            if data.min is not None:
                point["min"] = data.min
            if data.max is not None:
                point["max"] = data.max
        else:
            point["asDouble"] = float(data)
        points.append(point)
    if family.kind == "counter":
        metric["sum"] = {
            "dataPoints": points,
            "isMonotonic": True,
            "aggregationTemporality": 2,  # CUMULATIVE
        }
    elif family.kind == "histogram":
        metric["histogram"] = {
            "dataPoints": points,
            "aggregationTemporality": 2,
        }
    else:
        metric["gauge"] = {"dataPoints": points}
    return metric


def otlp_json(
    registry: MetricsRegistry,
    top_k: int = 10,
    now_ns: Optional[int] = None,
) -> dict[str, Any]:
    """An OTLP-style JSON document (one resource, one scope).

    ``now_ns`` stamps every data point (wall-clock, as OTLP requires
    for event timestamps); pass it explicitly for deterministic tests.
    The hot-query table is exported as a ``repro.hot_queries`` gauge
    whose data points carry fingerprint/example attributes.
    """
    stamp = time.time_ns() if now_ns is None else now_ns
    metrics = [_otlp_metric(family, stamp) for family in registry.collect()]

    hot = registry.fingerprints.top(top_k)
    if hot:
        points = []
        for entry in hot:
            points.append(
                {
                    "attributes": _otlp_attributes(
                        [
                            ("fingerprint", entry.fingerprint),
                            ("example_oql", entry.example_oql),
                            ("count", str(entry.count)),
                            ("rows", str(entry.rows)),
                        ]
                    ),
                    "timeUnixNano": str(stamp),
                    "asDouble": entry.total_seconds,
                }
            )
        metrics.append(
            {
                "name": "repro.hot_queries",
                "description": "total seconds per hot query fingerprint",
                "unit": "s",
                "gauge": {"dataPoints": points},
            }
        )

    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": _otlp_attributes(
                        [("service.name", "repro")]
                    )
                },
                "scopeMetrics": [
                    {
                        "scope": {"name": "repro.obs.telemetry"},
                        "metrics": metrics,
                    }
                ],
            }
        ]
    }


def otlp_text(registry: MetricsRegistry, now_ns: Optional[int] = None) -> str:
    return json.dumps(otlp_json(registry, now_ns=now_ns), indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# StatsD line protocol
# ---------------------------------------------------------------------------


def _statsd_name(name: str) -> str:
    return name.replace("_", ".", 1) if name.startswith("repro_") else name


def _tags(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f"{k}:{v}" for k, v in pairs)
    return f"|#{inner}"


def statsd_lines(registry: MetricsRegistry) -> list[str]:
    """The registry as StatsD metric lines (DogStatsD tag extension)."""
    lines: list[str] = []
    for family in registry.collect():
        base = _statsd_name(family.name)
        for label_values, data in sorted(family.samples, key=lambda s: s[0]):
            pairs = list(zip(family.label_names, label_values))
            tags = _tags(pairs)
            if isinstance(data, HistogramData):
                lines.append(f"{base}.count:{_fmt_value(data.count)}|c{tags}")
                lines.append(
                    f"{base}.sum_ms:{_fmt_value(data.sum * 1e3)}|ms{tags}"
                )
                for stat, value in data.quantiles().items():
                    lines.append(
                        f"{base}.{stat}:{_fmt_value(value * 1e3)}|ms{tags}"
                    )
            elif family.kind == "counter":
                lines.append(f"{base}:{_fmt_value(data)}|c{tags}")
            else:
                lines.append(f"{base}:{_fmt_value(data)}|g{tags}")
    return lines


def statsd_text(registry: MetricsRegistry) -> str:
    return "\n".join(statsd_lines(registry)) + "\n"
