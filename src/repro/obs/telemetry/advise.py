"""QL402 — runtime-informed index advice.

The static analyzer's QL303 flags *every* equality selection that an
index could serve; that is the right behaviour for a linter but noisy
as operational advice. This module crosses the same detection with the
telemetry fingerprint table: a diagnostic fires only when a query class
is demonstrably **hot** (it dominates the measured runtime), ran more
than once, and executed with *zero* index probes — i.e. the advice is
backed by observed load, not source-level speculation.

:func:`advise_hot_queries` re-translates each hot fingerprint's example
query, runs :func:`repro.lint.dataflow.index_probe_candidates` over the
resulting calculus term, drops candidates whose ``(extent, attribute)``
index already exists in the catalog, and emits one ``QL402`` info
diagnostic per remaining candidate with the ``Database.create_index``
call as its hint. The REPL's ``:stats`` and ``python -m repro metrics
top`` surface these lines under the hot-query table.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.telemetry.fingerprint import QueryStats
from repro.obs.telemetry.registry import MetricsRegistry, get_registry


def hot_candidates(
    db: Any,
    entry: QueryStats,
) -> list[tuple[str, str]]:
    """``(extent, attr)`` index-probe candidates for one hot query that
    are not already indexed. Empty when the example no longer parses
    (e.g. an extent was dropped since the query ran)."""
    from repro.lint.dataflow import index_probe_candidates

    try:
        term = db.translate(entry.example_oql)
    except Exception:
        return []
    names: set[str] = set(db.schema.extents())
    names.update(db.catalog.extents())
    names.update(getattr(db, "_object_extents", ()))
    existing = db.catalog.index_keys()
    return [
        candidate
        for candidate in index_probe_candidates(term, frozenset(names))
        if candidate not in existing
    ]


def advise_hot_queries(
    db: Any,
    registry: Optional[MetricsRegistry] = None,
    top_k: int = 5,
    min_share: float = 0.5,
    min_count: int = 2,
) -> list:
    """``QL402`` diagnostics for hot, unindexed query classes.

    A fingerprint qualifies when it ran at least ``min_count`` times,
    accounts for at least ``min_share`` of all measured query time, and
    never touched an index (``index_probes == 0``). One diagnostic per
    distinct ``(extent, attr)`` candidate, most expensive query first.
    """
    from repro.lint.diagnostics import make

    registry = registry if registry is not None else get_registry()
    total = registry.fingerprints.total_seconds()
    if total <= 0:
        return []
    diagnostics = []
    seen: set[tuple[str, str]] = set()
    for entry in registry.fingerprints.top(top_k):
        if entry.count < min_count or entry.index_probes > 0:
            continue
        share = entry.total_seconds / total
        if share < min_share:
            continue
        for extent, attr in hot_candidates(db, entry):
            if (extent, attr) in seen:
                continue
            seen.add((extent, attr))
            diagnostics.append(
                make(
                    "QL402",
                    f"query class {entry.fingerprint} is {share:.0%} of "
                    f"measured runtime ({entry.count} runs, "
                    f"{entry.total_seconds * 1e3:.1f}ms) with no index "
                    f"probes; equality on {attr!r} selects from extent "
                    f"{extent!r}",
                    None,
                    hint=f"Database.create_index({extent!r}, {attr!r})",
                )
            )
    return diagnostics
