"""Recording helpers: one finished query -> registry updates.

This is the only module that knows the **metric catalog** — every
name, kind and label the telemetry layer emits (the table in
``docs/OBSERVABILITY.md`` is generated from this vocabulary). The
database calls :func:`record_query_result` / :func:`record_query_error`
once per ``Database.run``; everything else here is decomposition of one
:class:`~repro.db.database.QueryResult` into counter increments and
histogram observations:

- per-phase latency histograms keyed on the tracer's
  :data:`~repro.obs.tracer.PIPELINE_PHASES` (plus the cache's
  ``cache`` span);
- success/error counters by engine and error class;
- executor row counters and per-operator invocation counts;
- cache hit/miss/eviction/invalidation counters bridged (as deltas)
  from the shared :class:`~repro.cache.core.CacheStats` block;
- normalization rule-fire counters;
- the per-fingerprint hot-query table.

Everything takes the registry explicitly — nothing here consults
global state, so tests can drive a private registry and the database
can share one registry across instances.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.telemetry.fingerprint import fingerprint_term, render_top
from repro.obs.telemetry.registry import MetricsRegistry

#: Rolling-window base name; exported as ``repro_window_qps`` /
#: ``repro_window_latency_seconds`` gauges.
WINDOW_NAME = "repro_window"


def result_rows(value: Any) -> int:
    """The result's cardinality: element count for collections, 1 for
    scalars (mirrors the executor's Reduce accounting)."""
    if isinstance(value, (list, tuple, set, frozenset)):
        return len(value)
    try:
        return len(value)  # Bag, OrderedSet, Vector
    except TypeError:
        return 1


def _queries_counter(registry: MetricsRegistry):
    return registry.counter(
        "repro_queries_total",
        "queries answered, by engine and outcome",
        labels=("engine", "status"),
    )


def record_query_error(
    registry: MetricsRegistry, error: BaseException, seconds: float
) -> None:
    """Count one failed query (by error class) and its latency."""
    _queries_counter(registry).inc(engine="none", status="error")
    registry.counter(
        "repro_query_errors_total",
        "failed queries by error class",
        labels=("error",),
    ).inc(error=type(error).__name__)
    registry.histogram(
        "repro_query_seconds", "whole-query latency"
    ).observe(seconds)
    registry.window(WINDOW_NAME).add(seconds)


def record_query_result(
    registry: MetricsRegistry, db: Any, result: Any, seconds: float
) -> None:
    """Decompose one successful :class:`QueryResult` into the catalog."""
    _queries_counter(registry).inc(engine=result.engine, status="ok")
    registry.histogram(
        "repro_query_seconds", "whole-query latency"
    ).observe(seconds)
    registry.window(WINDOW_NAME).add(seconds)

    span = result.span
    if span is not None:
        phase_hist = registry.histogram(
            "repro_phase_seconds",
            "per-pipeline-phase latency",
            labels=("phase",),
        )
        for phase, ms in span.phase_times_ms().items():
            phase_hist.observe(ms / 1e3, phase=phase)

    rows = result_rows(result.value)
    registry.counter(
        "repro_rows_returned_total", "result elements returned to callers"
    ).inc(rows)

    stats = result.stats
    if stats is not None:
        exec_counter = registry.counter(
            "repro_executor_rows_total",
            "executor row counters (ExecutionStats), by counter name",
            labels=("counter",),
        )
        for name, value in stats.as_dict().items():
            if value:
                exec_counter.inc(value, counter=name)
        if getattr(stats, "partitions", 0):
            registry.counter(
                "repro_parallel_queries_total",
                "queries answered by the partition-parallel engine",
            ).inc()
            registry.histogram(
                "repro_parallel_partitions",
                "partitions per parallel query",
            ).observe(stats.partitions)
            registry.histogram(
                "repro_parallel_workers",
                "worker threads per parallel query",
            ).observe(stats.parallel_workers)

    if result.metrics is not None and result.plan is not None:
        op_counter = registry.counter(
            "repro_operator_invocations_total",
            "physical operator stream openings, by operator",
            labels=("operator",),
        )
        op_rows = registry.counter(
            "repro_operator_rows_total",
            "bindings produced per physical operator class",
            labels=("operator",),
        )
        for snap in result.metrics.walk(result.plan):
            operator = type(snap.node).__name__
            if snap.metrics.invocations:
                op_counter.inc(snap.metrics.invocations, operator=operator)
            if snap.metrics.rows_out:
                op_rows.inc(snap.metrics.rows_out, operator=operator)

    fires = result.trace.rule_counts()
    if fires:
        rule_counter = registry.counter(
            "repro_normalize_rule_fires_total",
            "normalization rule fires, by Table 3 rule",
            labels=("rule",),
        )
        for rule, count in fires.items():
            rule_counter.inc(count, rule=rule)

    jit = getattr(result, "jit", None)
    if jit is not None:
        jit_counter = registry.counter(
            "repro_jit_expressions_total",
            "hot-path expressions prepared by the JIT, by outcome",
            labels=("status",),
        )
        if jit.get("compiled"):
            jit_counter.inc(jit["compiled"], status="compiled")
        if jit.get("fallback"):
            jit_counter.inc(jit["fallback"], status="fallback")
        constructs = jit.get("constructs") or {}
        if constructs:
            construct_counter = registry.counter(
                "repro_jit_fallback_constructs_total",
                "interpreter-fallback expressions by offending construct",
                labels=("construct",),
            )
            for name, count in constructs.items():
                construct_counter.inc(count, construct=name)

    cache = getattr(db, "cache", None)
    if cache is not None:
        bridge_cache(registry, cache)

    fingerprint = fingerprint_term(result.calculus)
    registry.fingerprints.record(
        fingerprint,
        oql=result.oql,
        seconds=seconds,
        rows=rows,
        engine=result.engine,
        index_probes=stats.index_probes if stats is not None else 0,
    )


def bridge_cache(registry: MetricsRegistry, cache: Any) -> None:
    """Mirror :class:`CacheStats` increments into telemetry counters.

    The cache keeps cumulative counters of its own; the registry
    remembers the last snapshot it saw per cache object and records
    only the deltas, so a registry shared by several databases over one
    cache still sums to the cache's own totals.
    """
    deltas = registry.bridge_deltas(cache.stats, cache.stats.as_dict())
    if deltas:
        event_counter = registry.counter(
            "repro_cache_events_total",
            "query-cache events bridged from CacheStats",
            labels=("event",),
        )
        for event, delta in deltas.items():
            event_counter.inc(delta, event=event)
    entries_gauge = registry.gauge(
        "repro_cache_entries",
        "current query-cache entry counts",
        labels=("store",),
    )
    for store, size in cache.sizes().items():
        entries_gauge.set(size, store=store.replace("_entries", ""))


def record_querylog_entry(
    registry: MetricsRegistry, entry: dict[str, Any]
) -> None:
    """Count one structured query-log record (and its slow flag)."""
    registry.counter(
        "repro_querylog_entries_total",
        "query-log records written, by slow flag",
        labels=("slow",),
    ).inc(slow="true" if entry.get("slow") else "false")


def record_querylog_rotation(registry: MetricsRegistry) -> None:
    registry.counter(
        "repro_querylog_rotations_total", "query-log file rollovers"
    ).inc()


def record_verifier_check(registry: MetricsRegistry, rule: str) -> None:
    registry.counter(
        "repro_verifier_checks_total",
        "rewrite fires checked by the soundness verifier, by rule",
        labels=("rule",),
    ).inc(rule=rule)


def record_verifier_violation(
    registry: MetricsRegistry, rule: str, invariant: str
) -> None:
    registry.counter(
        "repro_verifier_violations_total",
        "soundness violations raised by the verifier, by rule and invariant",
        labels=("rule", "invariant"),
    ).inc(rule=rule, invariant=invariant)


# ---------------------------------------------------------------------------
# Summaries (REPL :stats, CLI `metrics top`)
# ---------------------------------------------------------------------------


def summary_lines(
    registry: MetricsRegistry, top_k: int = 5, db: Any = None
) -> list[str]:
    """A terminal-friendly digest: totals, latency quantiles, QPS and
    the hot-query table (with QL402 advice when ``db`` is given)."""
    queries = _queries_counter(registry)
    ok = sum(
        child.value for key, child in queries.items() if key[1] == "ok"
    )
    errors = queries.total() - ok
    latency = registry.histogram("repro_query_seconds", "whole-query latency")
    child = latency.labels()
    window = registry.window(WINDOW_NAME)
    lines = [
        f"queries: {int(ok)} ok, {int(errors)} failed",
        (
            "latency: p50={:.3f}ms  p90={:.3f}ms  p99={:.3f}ms".format(
                child.quantile(0.5) * 1e3,
                child.quantile(0.9) * 1e3,
                child.quantile(0.99) * 1e3,
            )
            if child.count
            else "latency: (no samples)"
        ),
        f"window({window.width}s): qps={window.rate():.2f}  "
        f"mean={window.mean() * 1e3:.3f}ms",
    ]
    entries = registry.fingerprints.top(top_k)
    total = registry.fingerprints.total_seconds()
    lines.append(f"hot queries (top {top_k} of {len(registry.fingerprints)}):")
    lines.extend("  " + line for line in render_top(entries, total))
    if db is not None:
        from repro.obs.telemetry.advise import advise_hot_queries

        advice = list(advise_hot_queries(db, registry))
        if getattr(db, "jit", None) is not None:
            from repro.jit.advise import advise_jit_fallbacks

            advice.extend(advise_jit_fallbacks(db, registry))
        for diag in advice:
            lines.append(f"{diag}")
            if diag.hint:
                lines.append(f"  = help: {diag.hint}")
    return lines


def timed() -> float:
    """The duration clock every telemetry measurement uses
    (``time.perf_counter`` — wall-clock stamps are for event ``ts``
    fields only; see the timing-source test)."""
    return time.perf_counter()
