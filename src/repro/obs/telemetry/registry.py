"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` aggregates telemetry across every
:class:`~repro.db.database.Database` (and thread) that records into it.
Metric families are created on demand and *get-or-create*: two
databases asking for ``repro_queries_total`` share one family, which is
what makes the registry safe to share process-wide. All mutation runs
under one registry lock, so counter and histogram totals are exact even
under concurrent query threads (the threaded stress test asserts this).

Three metric kinds, modeled on the Prometheus data model:

- :class:`Counter` — monotonically increasing totals, optionally
  split by labels (``registry.counter(...).labels(engine="algebra")``);
- :class:`Gauge` — a value that can go up and down (cache entry counts);
- :class:`Histogram` — observations bucketed into **fixed log-scale
  boundaries** (the 1-2-5 decade series in
  :data:`DEFAULT_LATENCY_BUCKETS`), with p50/p90/p99 estimation by
  linear interpolation inside the matched bucket — the estimate is
  always within one bucket of the exact value.

:class:`RollingWindow` adds the time-local view the cumulative metrics
cannot give: a ring of per-second slots over the last N seconds, for
QPS and recent-latency readouts.

Enablement mirrors ``repro.cache``/``repro.analysis``: everything is
**off by default** and the off path records nothing. Switch it on per
database (``Database(telemetry=...)`` / ``db.enable_telemetry()``),
process-wide (:func:`enable_telemetry`), or via the
``REPRO_TELEMETRY=1`` environment flag. :func:`current_registry`
exposes the active registry to deep layers (the rewrite verifier, the
query log) without threading it through every call: the database
activates its registry for the dynamic extent of each telemetered
query via :func:`activation` (thread-local, so concurrent databases
with different registries never cross-talk).
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Union

from repro.errors import TelemetryError
from repro.obs.telemetry.fingerprint import FingerprintTable

#: Fixed log-scale (1-2-5 per decade) bucket upper bounds, in seconds,
#: from 10 microseconds to 100 seconds. Shared by every latency
#: histogram so exported series are comparable across metrics.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    base * (10.0**exp)
    for exp in range(-5, 3)
    for base in (1.0, 2.0, 5.0)
)

_QUANTILES = (0.5, 0.9, 0.99)


def _label_key(
    label_names: tuple[str, ...], labels: dict[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(label_names):
        raise TelemetryError(
            f"expected labels {list(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class _Family:
    """Shared behaviour of one named metric family (all label children)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        lock: threading.RLock,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = lock
        self._children: "OrderedDict[tuple[str, ...], Any]" = OrderedDict()

    def _child_for(self, key: tuple[str, ...]) -> Any:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _new_child(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: Any) -> Any:
        """The child metric for one label combination (created on demand)."""
        key = _label_key(self.label_names, labels)
        with self._lock:
            return self._child_for(key)

    def items(self) -> list[tuple[tuple[str, ...], Any]]:
        """``(label_values, child)`` pairs, in creation order."""
        with self._lock:
            return list(self._children.items())

    def clear(self) -> None:
        with self._lock:
            self._children.clear()


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise TelemetryError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount


class Counter(_Family):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            return child.value if child is not None else 0.0

    def total(self) -> float:
        """The sum across every label combination."""
        with self._lock:
            return sum(child.value for child in self._children.values())


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.inc(-amount)


class Gauge(_Family):
    """A value that can go up and down (sizes, rates, last-seen)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: Union[int, float], **labels: Any) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.label_names, labels)
        with self._lock:
            child = self._children.get(key)
            return child.value if child is not None else 0.0


class _HistogramChild:
    __slots__ = ("_lock", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, lock: threading.RLock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self.bounds = bounds
        # one slot per finite bound plus the +Inf overflow slot
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        with self._lock:
            i = 0
            for i, bound in enumerate(self.bounds):  # noqa: B007
                if value <= bound:
                    break
            else:
                i = len(self.bounds)
            self.counts[i] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by interpolating inside its bucket.

        The estimate never leaves the bucket the true value falls in
        (linear interpolation between the bucket's bounds), so it is
        within one log-scale bucket of exact. Returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0
            for i, n in enumerate(self.counts):
                if n == 0:
                    continue
                if cumulative + n >= target:
                    lo = self.bounds[i - 1] if i > 0 else 0.0
                    if i >= len(self.bounds):
                        # overflow bucket: the best point estimate we
                        # have is the observed maximum
                        return self.max if self.max is not None else lo
                    hi = self.bounds[i]
                    fraction = (target - cumulative) / n
                    return lo + (hi - lo) * fraction
                cumulative += n
            return self.max if self.max is not None else 0.0


class Histogram(_Family):
    """Bucketed observations with quantile estimation."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        lock: threading.RLock,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise TelemetryError("a histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise TelemetryError("histogram bucket bounds must be distinct")
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.bounds)

    def observe(self, value: Union[int, float], **labels: Any) -> None:
        self.labels(**labels).observe(value)

    def quantile(self, q: float, **labels: Any) -> float:
        return self.labels(**labels).quantile(q)


class RollingWindow:
    """Event counts and values over the trailing ``width`` seconds.

    A ring of one-second slots; each slot remembers the absolute second
    it was last written so stale slots are discarded lazily — no
    background thread, O(slots) reads, O(1) writes. ``clock`` is
    injectable so tests can drive time deterministically (the default
    is ``time.monotonic``; wall-clock time would jump under NTP).
    """

    def __init__(
        self,
        width: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if width < 1:
            raise TelemetryError("window width must be at least one second")
        self.width = int(width)
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: list[list[float]] = [[-1.0, 0.0, 0.0] for _ in range(self.width)]

    def add(self, value: Union[int, float] = 0.0) -> None:
        second = int(self._clock())
        with self._lock:
            slot = self._slots[second % self.width]
            if slot[0] != second:
                slot[0] = second
                slot[1] = 0.0
                slot[2] = 0.0
            slot[1] += 1
            slot[2] += value

    def totals(self) -> tuple[int, float]:
        """``(count, sum)`` over the live slots of the window."""
        horizon = int(self._clock()) - self.width
        with self._lock:
            count = 0.0
            total = 0.0
            for stamp, n, s in self._slots:
                if stamp > horizon:
                    count += n
                    total += s
            return int(count), total

    def rate(self) -> float:
        """Events per second over the window."""
        count, _ = self.totals()
        return count / float(self.width)

    def mean(self) -> float:
        """Mean recorded value over the window (0.0 when empty)."""
        count, total = self.totals()
        return total / count if count else 0.0


# ---------------------------------------------------------------------------
# Snapshots (the exporters' input)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HistogramData:
    """One histogram child, frozen for export."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]  # per finite bound, then the +Inf slot
    sum: float
    count: int
    min: Optional[float]
    max: Optional[float]

    def quantiles(self) -> dict[str, float]:
        child = _HistogramChild(threading.RLock(), self.bounds)
        child.counts = list(self.counts)
        child.sum = self.sum
        child.count = self.count
        child.min = self.min
        child.max = self.max
        return {f"p{int(q * 100)}": child.quantile(q) for q in _QUANTILES}


@dataclass(frozen=True)
class FamilySnapshot:
    """One metric family at one instant: the exporters' unit of work."""

    name: str
    kind: str  # 'counter' | 'gauge' | 'histogram'
    help: str
    label_names: tuple[str, ...]
    #: ``(label_values, data)`` pairs; data is a float for counters and
    #: gauges, a :class:`HistogramData` for histograms.
    samples: tuple[tuple[tuple[str, ...], Any], ...]


class MetricsRegistry:
    """Thread-safe, process-shareable home of every metric family.

    Families are keyed by name and get-or-create: asking twice (from
    two databases, or two threads) returns the same object; asking for
    an existing name with a different kind or label set raises
    :class:`~repro.errors.TelemetryError` rather than silently forking
    the series.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: "OrderedDict[str, _Family]" = OrderedDict()
        self._windows: "OrderedDict[str, RollingWindow]" = OrderedDict()
        #: per-fingerprint hot-query stats (see fingerprint.py)
        self.fingerprints = FingerprintTable()
        # last-seen cumulative snapshots of bridged stat blocks
        # (CacheStats and friends), keyed by id(source) — deltas are
        # computed here so several databases sharing one cache and one
        # registry never double-count.
        self._bridged: dict[int, dict[str, int]] = {}

    # -- family accessors -------------------------------------------------------

    def _family(
        self,
        cls: type,
        name: str,
        help: str,
        labels: tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, tuple(labels), self._lock, **kwargs)
                self._families[name] = family
                return family
            if not isinstance(family, cls):
                raise TelemetryError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            if family.label_names != tuple(labels):
                raise TelemetryError(
                    f"metric {name!r} already registered with labels "
                    f"{list(family.label_names)}"
                )
            return family

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._family(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help, labels, buckets=buckets)

    def window(self, name: str, width: int = 60) -> RollingWindow:
        with self._lock:
            win = self._windows.get(name)
            if win is None:
                win = self._windows[name] = RollingWindow(width)
            return win

    # -- bridging cumulative stat blocks ----------------------------------------

    def bridge_deltas(self, source: Any, current: dict[str, int]) -> dict[str, int]:
        """Per-key increments of ``current`` since this registry last
        saw ``source`` (e.g. one shared :class:`CacheStats`)."""
        with self._lock:
            seen = self._bridged.setdefault(id(source), {})
            deltas: dict[str, int] = {}
            for key, value in current.items():
                delta = value - seen.get(key, 0)
                if delta > 0:
                    deltas[key] = delta
                seen[key] = value
            return deltas

    # -- snapshots --------------------------------------------------------------

    def collect(self) -> list[FamilySnapshot]:
        """A consistent point-in-time snapshot of every family.

        Window families are materialized as gauges (``repro_window_qps``
        and ``repro_window_latency_seconds``) so exporters see one
        uniform shape.
        """
        with self._lock:
            out: list[FamilySnapshot] = []
            for family in self._families.values():
                samples: list[tuple[tuple[str, ...], Any]] = []
                for key, child in family._children.items():
                    if isinstance(child, _HistogramChild):
                        data: Any = HistogramData(
                            bounds=child.bounds,
                            counts=tuple(child.counts),
                            sum=child.sum,
                            count=child.count,
                            min=child.min,
                            max=child.max,
                        )
                    else:
                        data = child.value
                    samples.append((key, data))
                out.append(
                    FamilySnapshot(
                        name=family.name,
                        kind=family.kind,
                        help=family.help,
                        label_names=family.label_names,
                        samples=tuple(samples),
                    )
                )
            for name, win in self._windows.items():
                label = f"{win.width}s"
                out.append(
                    FamilySnapshot(
                        name=f"{name}_qps",
                        kind="gauge",
                        help=f"events per second over the trailing {label}",
                        label_names=("window",),
                        samples=(((label,), win.rate()),),
                    )
                )
                out.append(
                    FamilySnapshot(
                        name=f"{name}_latency_seconds",
                        kind="gauge",
                        help=f"mean recorded latency over the trailing {label}",
                        label_names=("window",),
                        samples=(((label,), win.mean()),),
                    )
                )
            return sorted(out, key=lambda snap: snap.name)

    def reset(self) -> None:
        """Zero every family, window, bridge and fingerprint entry."""
        with self._lock:
            self._families.clear()
            self._windows.clear()
            self._bridged.clear()
            self.fingerprints.clear()


# ---------------------------------------------------------------------------
# Enablement: process default, environment flag, thread-local activation
# ---------------------------------------------------------------------------

_FALSEY = ("", "0", "false", "off", "no")

#: The registry :func:`get_registry` hands out — one per process unless
#: replaced via :func:`enable_telemetry`.
_DEFAULT = MetricsRegistry()

#: Process-wide switch flipped by :func:`enable_telemetry`.
_PROCESS_ENABLED = False

_ACTIVE = threading.local()


def telemetry_env_enabled() -> bool:
    """Is the ``REPRO_TELEMETRY`` environment flag set (and not falsey)?"""
    return os.environ.get("REPRO_TELEMETRY", "").strip().lower() not in _FALSEY


def telemetry_enabled() -> bool:
    """Is telemetry on process-wide (flag or environment)?"""
    return _PROCESS_ENABLED or telemetry_env_enabled()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (shared by every database that
    opts in with ``telemetry=True`` or the environment flag)."""
    return _DEFAULT


def enable_telemetry(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn telemetry on process-wide; every ``Database`` constructed
    afterwards (without an explicit ``telemetry=``) records into the
    default registry. Pass a registry to install it as the default."""
    global _DEFAULT, _PROCESS_ENABLED
    if registry is not None:
        _DEFAULT = registry
    _PROCESS_ENABLED = True
    return _DEFAULT


def disable_telemetry() -> None:
    """Undo :func:`enable_telemetry` (the environment flag still wins)."""
    global _PROCESS_ENABLED
    _PROCESS_ENABLED = False


def resolve_telemetry(telemetry: Any) -> Optional[MetricsRegistry]:
    """Normalize ``Database(telemetry=...)`` to a registry or None.

    ``None`` defers to :func:`telemetry_enabled` (off by default — the
    byte-for-byte-unchanged seed path). ``True``/``False`` force it; an
    existing :class:`MetricsRegistry` is shared as-is.
    """
    if telemetry is None:
        return get_registry() if telemetry_enabled() else None
    if telemetry is False:
        return None
    if telemetry is True:
        return get_registry()
    if isinstance(telemetry, MetricsRegistry):
        return telemetry
    raise TelemetryError(
        "telemetry must be None, a bool or a MetricsRegistry, "
        f"got {type(telemetry).__name__}"
    )


@contextmanager
def activation(registry: MetricsRegistry) -> Iterator[None]:
    """Make ``registry`` the thread's active registry for a block.

    Deep layers that cannot be handed the registry explicitly (the
    rewrite verifier, the query log) pick it up via
    :func:`current_registry` while a telemetered query is in flight.
    """
    saved = getattr(_ACTIVE, "registry", None)
    _ACTIVE.registry = registry
    try:
        yield
    finally:
        _ACTIVE.registry = saved


def current_registry() -> Optional[MetricsRegistry]:
    """The thread's active registry, else the process default when
    telemetry is on process-wide, else None."""
    active = getattr(_ACTIVE, "registry", None)
    if active is not None:
        return active
    return _DEFAULT if telemetry_enabled() else None
