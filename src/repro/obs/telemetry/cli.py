"""``python -m repro metrics`` — telemetry over a demo burst.

The databases here are in-process, so (as with ``cache stats``) the
subcommand first drives a query burst against a telemetry-enabled demo
database, then reports the registry it filled:

- ``dump [--format prom|otlp|statsd]`` — the full registry in one of
  the three exporter formats (Prometheus text by default);
- ``top [--k N]`` — the terminal digest: totals, latency quantiles,
  QPS window, hot-query table and QL402 index advice;
- ``serve [--port P]`` — the ``/metrics`` HTTP endpoint, blocking; CI
  scrapes this with ``curl`` and validates the scrape with the strict
  parser.

``--burst N`` controls how many workload passes warm the registry (the
burst includes one failing query so error counters are non-zero).
"""

from __future__ import annotations

import argparse
from typing import Callable, Optional

#: The demo burst: the cache CLI's workload shapes plus one query that
#: fails (unknown name) so ``repro_query_errors_total`` is exercised.
WORKLOAD = (
    "select distinct c.name from c in Cities",
    "select distinct x.name from x in Cities",  # alpha-variant: same fingerprint
    "count(select h.name from c in Cities, h in c.hotels)",
    "select distinct struct(city: c.name, hotel: h.name) "
    "from c in Cities, h in c.hotels where h.stars > 2",
    "select struct(city: city, n: count(partition)) "
    "from c in Cities group by city: c.name",
)

FAILING_QUERY = "select n.name from n in Nowhere"


def run_burst(passes: int = 5):
    """A telemetry-enabled demo database after ``passes`` burst passes."""
    from repro.db.database import demo_travel_database

    db = demo_travel_database(num_cities=6, seed=3)
    db.enable_telemetry()
    db.enable_cache()
    for _ in range(max(0, passes)):
        for oql in WORKLOAD:
            db.run(oql)
        try:
            db.run(FAILING_QUERY)
        except Exception:
            pass  # the point: error counters must tick
    return db


def main(argv: Optional[list[str]] = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Telemetry registry over a demo query burst.",
    )
    parser.add_argument("action", choices=("dump", "top", "serve"))
    parser.add_argument(
        "--burst",
        type=int,
        default=5,
        help="workload passes before reporting/serving (default: 5)",
    )
    parser.add_argument(
        "--format",
        choices=("prom", "otlp", "statsd"),
        default="prom",
        help="dump format (default: prom)",
    )
    parser.add_argument(
        "--k", type=int, default=5, help="hot-query table size for top"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=9464, help="serve port (default: 9464)"
    )
    args = parser.parse_args(argv)

    db = run_burst(args.burst)
    registry = db.telemetry

    if args.action == "dump":
        from repro.obs.telemetry.export import (
            otlp_text,
            prometheus_text,
            statsd_text,
        )

        text = {
            "prom": prometheus_text,
            "otlp": otlp_text,
            "statsd": statsd_text,
        }[args.format](registry)
        out(text.rstrip("\n"))
        return 0

    if args.action == "top":
        from repro.obs.telemetry.instrument import summary_lines

        for line in summary_lines(registry, top_k=args.k, db=db):
            out(line)
        return 0

    from repro.obs.telemetry.server import MetricsServer

    server = MetricsServer(registry, host=args.host, port=args.port)
    out(f"serving {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0
