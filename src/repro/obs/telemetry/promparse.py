"""A strict parser for the Prometheus text exposition format.

This is the round-trip half of the exporter contract: everything
:func:`repro.obs.telemetry.export.prometheus_text` emits — and
everything the ``/metrics`` endpoint serves, including the scrape CI
uploads as an artifact — must parse under the rules here, which
implement the format spec deliberately pedantically:

- metric and label names must match the spec's character classes;
- ``# TYPE`` must appear at most once per family and before any of its
  samples; samples of one family must be contiguous;
- label values must be well-formed double-quoted strings with only the
  ``\\\\``, ``\\"`` and ``\\n`` escapes;
- sample values must parse as floats (``+Inf``/``-Inf``/``NaN`` ok);
- duplicate (name, label-set) samples are an error;
- histograms must have cumulative non-decreasing buckets, a ``+Inf``
  bucket, and agreeing ``_count``; ``_sum``/``_count`` must be present.

:class:`PromParseError` carries the offending line number. The parser
is self-contained (no registry types) so tests and external tools can
use it against any scrape.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Optional

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class PromParseError(ValueError):
    """A scrape violated the text exposition format."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


@dataclass
class ParsedFamily:
    """One metric family reconstructed from a scrape."""

    name: str
    type: str = "untyped"
    help: Optional[str] = None
    #: ``(sample_name, labels) -> value``; labels as a sorted tuple of
    #: ``(name, value)`` pairs
    samples: "dict[tuple[str, tuple[tuple[str, str], ...]], float]" = field(
        default_factory=dict
    )

    def value(self, sample_name: Optional[str] = None, **labels: str) -> float:
        key = (
            sample_name or self.name,
            tuple(sorted(labels.items())),
        )
        return self.samples[key]


def _parse_value(token: str, lineno: int) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise PromParseError(lineno, f"invalid sample value {token!r}") from None


def _parse_labels(text: str, lineno: int) -> tuple[tuple[str, str], ...]:
    """Parse the inside of one ``{...}`` block with a strict scanner."""
    pairs: list[tuple[str, str]] = []
    i = 0
    n = len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            raise PromParseError(lineno, "label without '='")
        name = text[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise PromParseError(lineno, f"invalid label name {name!r}")
        i = eq + 1
        if i >= n or text[i] != '"':
            raise PromParseError(lineno, "label value must be double-quoted")
        i += 1
        value_chars: list[str] = []
        while True:
            if i >= n:
                raise PromParseError(lineno, "unterminated label value")
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise PromParseError(lineno, "dangling escape")
                esc = text[i + 1]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise PromParseError(lineno, f"invalid escape \\{esc}")
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            if ch == "\n":
                raise PromParseError(lineno, "raw newline in label value")
            value_chars.append(ch)
            i += 1
        pairs.append((name, "".join(value_chars)))
        if i < n:
            if text[i] != ",":
                raise PromParseError(lineno, f"expected ',' at {text[i:]!r}")
            i += 1
    names = [name for name, _ in pairs]
    if len(set(names)) != len(names):
        raise PromParseError(lineno, "duplicate label name")
    return tuple(sorted(pairs))


def _base_family(sample_name: str, families: dict[str, ParsedFamily]) -> str:
    """Resolve ``x_bucket``/``x_sum``/``x_count`` to the family ``x``
    when that family was declared a histogram."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.type == "histogram":
                return base
    return sample_name


def parse_prometheus_text(text: str) -> dict[str, ParsedFamily]:
    """Parse a scrape strictly; raise :class:`PromParseError` on any
    deviation from the exposition format. Returns families by name."""
    families: dict[str, ParsedFamily] = {}
    finished: set[str] = set()  # families whose sample block has ended
    current: Optional[str] = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    raise PromParseError(lineno, f"malformed {parts[1]} line")
                name = parts[2]
                if not _NAME_RE.match(name):
                    raise PromParseError(lineno, f"invalid metric name {name!r}")
                family = families.setdefault(name, ParsedFamily(name))
                if parts[1] == "HELP":
                    if family.help is not None:
                        raise PromParseError(lineno, f"second HELP for {name!r}")
                    family.help = parts[3] if len(parts) > 3 else ""
                else:
                    if len(parts) < 4 or parts[3] not in _VALID_TYPES:
                        raise PromParseError(lineno, f"invalid TYPE for {name!r}")
                    if family.type != "untyped" or family.samples:
                        raise PromParseError(
                            lineno, f"TYPE after samples for {name!r}"
                        )
                    family.type = parts[3]
            # other comments are legal and ignored
            continue

        # sample line: name[{labels}] value [timestamp]
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise PromParseError(lineno, "unbalanced '{'")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], lineno)
            rest = line[close + 1 :].split()
        else:
            tokens = line.split()
            if len(tokens) < 2:
                raise PromParseError(lineno, "sample without value")
            sample_name = tokens[0]
            labels = ()
            rest = tokens[1:]
        if not _NAME_RE.match(sample_name):
            raise PromParseError(lineno, f"invalid metric name {sample_name!r}")
        if not rest or len(rest) > 2:
            raise PromParseError(lineno, "expected 'value [timestamp]'")
        value = _parse_value(rest[0], lineno)
        if len(rest) == 2 and not re.match(r"^-?\d+$", rest[1]):
            raise PromParseError(lineno, f"invalid timestamp {rest[1]!r}")

        base = _base_family(sample_name, families)
        family = families.setdefault(base, ParsedFamily(base))
        if base in finished:
            raise PromParseError(
                lineno, f"samples for {base!r} are not contiguous"
            )
        if current is not None and current != base:
            finished.add(current)
        current = base
        key = (sample_name, labels)
        if key in family.samples:
            raise PromParseError(
                lineno, f"duplicate sample {sample_name}{dict(labels)}"
            )
        family.samples[key] = value

    _check_histograms(families)
    return families


def _check_histograms(families: dict[str, ParsedFamily]) -> None:
    for family in families.values():
        if family.type != "histogram":
            continue
        buckets: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
        sums: set[tuple[tuple[str, str], ...]] = set()
        counts: dict[tuple[tuple[str, str], ...], float] = {}
        for (sample_name, labels), value in family.samples.items():
            if sample_name == family.name + "_bucket":
                le = dict(labels).get("le")
                if le is None:
                    raise PromParseError(0, f"{family.name} bucket without le")
                rest = tuple(sorted(p for p in labels if p[0] != "le"))
                bound = math.inf if le == "+Inf" else float(le)
                buckets.setdefault(rest, []).append((bound, value))
            elif sample_name == family.name + "_sum":
                sums.add(labels)
            elif sample_name == family.name + "_count":
                counts[labels] = value
            else:
                raise PromParseError(
                    0, f"stray sample {sample_name!r} in histogram {family.name!r}"
                )
        if not buckets:
            if family.samples:
                raise PromParseError(
                    0, f"histogram {family.name!r} has no buckets"
                )
            continue  # declared but never observed — legal
        for labels, series in buckets.items():
            series.sort(key=lambda pair: pair[0])
            if series[-1][0] != math.inf:
                raise PromParseError(
                    0, f"histogram {family.name!r} lacks a +Inf bucket"
                )
            values = [count for _, count in series]
            if any(b > a for b, a in zip(values, values[1:])):
                raise PromParseError(
                    0, f"histogram {family.name!r} buckets are not cumulative"
                )
            if labels not in sums or labels not in counts:
                raise PromParseError(
                    0, f"histogram {family.name!r} is missing _sum or _count"
                )
            if counts[labels] != series[-1][1]:
                raise PromParseError(
                    0,
                    f"histogram {family.name!r}: +Inf bucket disagrees with _count",
                )
