"""Fleet telemetry: a process-wide metrics registry with exporters.

The package turns the per-query observability of :mod:`repro.obs`
(tracer spans, operator metrics, EXPLAIN ANALYZE) into *aggregate*
telemetry a monitoring stack can scrape:

- :mod:`.registry` — thread-safe :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families plus a rolling time window, and the
  enablement switches (``Database(telemetry=...)``, ``REPRO_TELEMETRY``,
  :func:`enable_telemetry`);
- :mod:`.fingerprint` — alpha-equivalent query fingerprints and the
  top-K hot-query table;
- :mod:`.instrument` — the metric catalog: one finished query
  decomposed into registry updates;
- :mod:`.export` — Prometheus text, OTLP-style JSON, StatsD lines;
- :mod:`.promparse` — a strict parser for the Prometheus exposition
  format (the round-trip half of the exporter contract);
- :mod:`.server` — a stdlib ``/metrics`` HTTP endpoint;
- :mod:`.advise` — QL402: runtime-informed index advice;
- :mod:`.cli` — ``python -m repro metrics dump|top|serve``.

Telemetry is **opt-in**: with it off, ``Database.run`` takes the exact
seed code path (the parity test asserts zero telemetry allocations).
"""

from repro.obs.telemetry.export import (
    PROMETHEUS_CONTENT_TYPE,
    otlp_json,
    otlp_text,
    prometheus_text,
    statsd_lines,
    statsd_text,
)
from repro.obs.telemetry.fingerprint import (
    FingerprintTable,
    QueryStats,
    fingerprint_term,
    render_top,
)
from repro.obs.telemetry.instrument import (
    record_query_error,
    record_query_result,
    summary_lines,
)
from repro.obs.telemetry.promparse import (
    ParsedFamily,
    PromParseError,
    parse_prometheus_text,
)
from repro.obs.telemetry.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingWindow,
    activation,
    current_registry,
    disable_telemetry,
    enable_telemetry,
    get_registry,
    resolve_telemetry,
    telemetry_enabled,
)
from repro.obs.telemetry.server import MetricsServer

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "RollingWindow",
    "FingerprintTable",
    "QueryStats",
    "ParsedFamily",
    "PromParseError",
    "activation",
    "current_registry",
    "disable_telemetry",
    "enable_telemetry",
    "fingerprint_term",
    "get_registry",
    "otlp_json",
    "otlp_text",
    "parse_prometheus_text",
    "prometheus_text",
    "record_query_error",
    "record_query_result",
    "render_top",
    "resolve_telemetry",
    "statsd_lines",
    "statsd_text",
    "summary_lines",
    "telemetry_enabled",
]
