"""EXPLAIN ANALYZE: estimated vs actual cardinalities per plan node.

The optimizer's :func:`~repro.algebra.optimizer.explain` prints
estimates; this module runs the plan (via
:meth:`Database.explain_data <repro.db.database.Database.explain_data>`)
and lines the estimates up against what actually flowed through every
operator, turning the cost model's guesses into a testable artifact.

The accuracy measure is the **q-error** — ``max(est, actual) /
min(est, actual)``, floored at one row — the standard relative error
for cardinality estimates (symmetric: a 10x over- and a 10x
under-estimate both score 10). A perfect estimate has q-error 1.0.

Two output forms share one document shape: :func:`render_explain` for
terminals and the document itself (plain dicts/lists) for ``--json``.
Schema in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.algebra.ops import PlanNode
from repro.algebra.optimizer import estimate_cardinality
from repro.obs.metrics import PlanMetrics


def q_error(estimated: float, actual: float) -> float:
    """Symmetric relative cardinality error (1.0 = perfect)."""
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est, act) / min(est, act)


def plan_to_dict(
    plan: PlanNode,
    extent_sizes: Optional[dict[str, int]] = None,
    stats: Optional[dict] = None,
    metrics: Optional[PlanMetrics] = None,
) -> dict[str, Any]:
    """The plan subtree as nested dicts, annotated with estimates and —
    when ``metrics`` is given — per-node actuals and wall time."""
    snapshot = metrics.snapshot(plan) if metrics is not None else None

    def build(node: PlanNode, snap) -> dict[str, Any]:
        out: dict[str, Any] = {
            "op": type(node).__name__,
            "label": node.label(),
            "estimated_rows": round(
                estimate_cardinality(node, extent_sizes, stats), 2
            ),
        }
        if snap is not None:
            block = snap.metrics
            out["actual_rows"] = block.rows_out
            out["rows_in"] = snap.rows_in
            out["invocations"] = block.invocations
            out["time_ms"] = round(block.time_ms, 6)
            out["self_time_ms"] = round(snap.self_time_ms, 6)
            out["q_error"] = round(q_error(out["estimated_rows"], block.rows_out), 2)
            if block.hash_builds:
                out["hash_builds"] = block.hash_builds
            if block.index_probes:
                out["index_probes"] = block.index_probes
        kids = node.children()
        if kids:
            out["children"] = [
                build(child, snap.children[i] if snap is not None else None)
                for i, child in enumerate(kids)
            ]
        return out

    return build(plan, snapshot)


def summarize(plan_dict: dict[str, Any]) -> dict[str, Any]:
    """Cost-model accuracy over every analyzed node of one plan."""
    errors: list[float] = []

    def walk(node: dict[str, Any]) -> None:
        if "q_error" in node:
            errors.append(node["q_error"])
        for child in node.get("children", ()):
            walk(child)

    walk(plan_dict)
    if not errors:
        return {"nodes": 0}
    return {
        "nodes": len(errors),
        "mean_q_error": round(sum(errors) / len(errors), 2),
        "max_q_error": round(max(errors), 2),
    }


def render_explain(doc: dict[str, Any]) -> str:
    """The explain document as an aligned text tree."""
    lines: list[str] = []
    oql = doc.get("oql", "").strip()
    title = "EXPLAIN ANALYZE" if doc.get("analyzed") else "EXPLAIN"
    lines.append(f"{title}: {oql}")
    phases = doc.get("phases_ms")
    if phases:
        lines.append(
            "phases: " + "  ".join(f"{k}={v:.3f}ms" for k, v in phases.items())
        )
    cache = doc.get("cache")
    if cache:
        line = f"cache:  compile={cache.get('compile', '-')}"
        if "result" in cache:
            line += f"  result={cache['result']}"
        stats = cache.get("stats")
        if stats:
            line += (
                f"  (hits={stats['compile_hits']}+{stats['result_hits']}"
                f"  misses={stats['compile_misses']}+{stats['result_misses']}"
                f"  evictions={stats['evictions']}"
                f"  invalidations={stats['invalidations']})"
            )
        lines.append(line)
    plan = doc.get("plan")
    if plan is None:
        lines.append(f"(no algebra plan: {doc.get('note', 'executed by interpreter')})")
        return "\n".join(lines)

    rows: list[tuple[str, str]] = []

    def walk(node: dict[str, Any], depth: int) -> None:
        label = "  " * depth + node["label"]
        annot = f"est~{node['estimated_rows']:g}"
        if "actual_rows" in node:
            annot += (
                f"  actual={node['actual_rows']}"
                f"  q-err={node['q_error']:g}"
                f"  time={node['time_ms']:.3f}ms"
                f" (self {node['self_time_ms']:.3f}ms)"
            )
            if node.get("hash_builds"):
                annot += f"  hash_builds={node['hash_builds']}"
            if node.get("index_probes"):
                annot += f"  index_probes={node['index_probes']}"
        rows.append((label, annot))
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(plan, 0)
    width = max(len(label) for label, _ in rows) + 3
    lines.extend(f"{label:<{width}}{annot}" for label, annot in rows)
    summary = doc.get("summary")
    if summary and summary.get("nodes"):
        lines.append(
            f"cost model: mean q-error {summary['mean_q_error']:g}, "
            f"max {summary['max_q_error']:g} over {summary['nodes']} nodes"
        )
    return "\n".join(lines)
