"""Per-operator execution metrics.

:class:`PlanMetrics` gives every physical plan node its own
:class:`OperatorMetrics` block — rows produced, generator openings,
cumulative wall time, and the hash-build/index-probe counts the global
:class:`~repro.algebra.physical.ExecutionStats` only keeps in
aggregate. The :class:`~repro.algebra.physical.Executor` wraps each
operator's binding stream in :meth:`PlanMetrics.instrument` when (and
only when) it was constructed with a metrics object; the default
executor path is untouched, so queries run with observability off
behave exactly as the seed did.

Node identity is ``id(node)``: plan trees are built fresh per query and
structurally-equal operators in different positions must not share a
counter block. Timing is *inclusive* — pulling a row from a Select also
runs its child — so :meth:`PlanMetrics.snapshot` derives per-node
*self* time by subtracting the children's inclusive time, and rows-in
as the sum of the children's rows-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Optional

from repro.algebra.ops import PlanNode


@dataclass
class OperatorMetrics:
    """Counters for one physical plan node during one execution."""

    #: times the operator's binding stream was opened
    invocations: int = 0
    #: bindings the operator yielded
    rows_out: int = 0
    #: cumulative inclusive wall time spent pulling from this operator
    time_ns: int = 0
    #: hash-table inserts while building a hash join's build side
    hash_builds: int = 0
    #: hash-index lookups performed by an IndexScan
    index_probes: int = 0

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge_from(self, other: "OperatorMetrics") -> None:
        """Add another block's counters into this one.

        Counter blocks are single-threaded by design (one PlanMetrics
        per execution); concurrent collectors each keep a private block
        and combine afterwards — summation is order-insensitive, so the
        totals are deterministic however the collectors interleaved.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class NodeSnapshot:
    """One plan node's metrics resolved against the tree shape."""

    node: PlanNode
    depth: int
    metrics: OperatorMetrics
    rows_in: int
    self_time_ns: int
    children: list["NodeSnapshot"] = field(default_factory=list)

    @property
    def rows_out(self) -> int:
        return self.metrics.rows_out

    @property
    def self_time_ms(self) -> float:
        return self.self_time_ns / 1e6


class PlanMetrics:
    """Collects :class:`OperatorMetrics` per plan node of one query."""

    def __init__(self) -> None:
        self._by_node: dict[int, OperatorMetrics] = {}

    def reset(self) -> None:
        self._by_node.clear()

    def for_node(self, node: PlanNode) -> OperatorMetrics:
        """The (created-on-demand) counter block for ``node``."""
        block = self._by_node.get(id(node))
        if block is None:
            block = self._by_node[id(node)] = OperatorMetrics()
        return block

    def get(self, node: PlanNode) -> Optional[OperatorMetrics]:
        return self._by_node.get(id(node))

    def instrument(
        self, node: PlanNode, stream: Iterator[dict[str, Any]]
    ) -> Iterator[dict[str, Any]]:
        """Count and time every pull from ``stream`` against ``node``."""
        block = self.for_node(node)
        block.invocations += 1
        perf = time.perf_counter_ns
        while True:
            start = perf()
            try:
                item = next(stream)
            except StopIteration:
                block.time_ns += perf() - start
                return
            block.time_ns += perf() - start
            block.rows_out += 1
            yield item

    def snapshot(self, plan: PlanNode) -> NodeSnapshot:
        """Resolve metrics over the plan tree (pre-order root).

        Derived quantities: ``rows_in`` is the sum of the children's
        rows-out and ``self_time_ns`` the node's inclusive time minus
        its children's (clamped at zero — timer granularity can make
        a pass-through operator appear marginally cheaper than its
        child).
        """
        return self._snap(plan, 0)

    def _snap(self, node: PlanNode, depth: int) -> NodeSnapshot:
        children = [self._snap(child, depth + 1) for child in node.children()]
        block = self.for_node(node)
        rows_in = sum(child.metrics.rows_out for child in children)
        child_time = sum(child.metrics.time_ns for child in children)
        return NodeSnapshot(
            node=node,
            depth=depth,
            metrics=block,
            rows_in=rows_in,
            self_time_ns=max(0, block.time_ns - child_time),
            children=children,
        )

    def walk(self, plan: PlanNode) -> Iterator[NodeSnapshot]:
        """Pre-order iteration over :meth:`snapshot`."""
        root = self.snapshot(plan)
        stack = [root]
        while stack:
            snap = stack.pop()
            yield snap
            stack.extend(reversed(snap.children))
