"""Abstract syntax of the monoid comprehension calculus.

The term language (section 2 of the paper, plus the section 4
extensions) is:

- constants, variables, lambda abstraction and application;
- records ``<a1=e1, ...>``, field projection ``e.a`` and indexing ``e[i]``;
- arithmetic/comparison/boolean operators and ``if-then-else``;
- the three monoid primitives ``zero(M)``, ``unit(M)(e)`` and
  ``e1 merge(M) e2``;
- monoid comprehensions ``M{ e | q1, ..., qn }`` whose qualifiers are
  generators ``v <- e`` (with an indexed form ``v[i] <- e`` for
  vectors), predicates, and bindings ``v == e``;
- explicit homomorphisms ``hom[N -> M](\\v. e)(u)``;
- object operations ``new(e)``, ``!e``, ``e := s`` and path updates
  ``path op= e`` (section 4.2);
- ``let`` and builtin function / method calls for OQL coverage.

All nodes are immutable (frozen dataclasses) and hashable, so terms can
be used as dictionary keys (memoized normalization) and compared
structurally. Alpha-equivalence and substitution live in
:mod:`repro.calculus.traversal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

# ---------------------------------------------------------------------------
# Monoid references
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonoidRef:
    """A syntactic reference to a monoid.

    Plain monoids are referenced by name (``set``, ``bag``, ``sum``...).
    ``sorted``/``sortedbag`` carry the ordering function as a lambda
    term; vector monoids (``M[n]``) carry an element monoid reference
    and a size term (the size may be a runtime expression).
    """

    name: str
    key: Optional["Term"] = None
    element: Optional["MonoidRef"] = None
    size: Optional["Term"] = None

    def __str__(self) -> str:
        if self.name in ("sorted", "sortedbag") and self.key is not None:
            return f"{self.name}[{self.key}]"
        if self.name == "vec" and self.element is not None:
            return f"{self.element}[{self.size}]"
        return self.name

    @property
    def is_vector(self) -> bool:
        return self.name == "vec"


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of all calculus terms (abstract; nodes are dataclasses).

    Terms translated from OQL carry the source :class:`~repro.span.Span`
    of the OQL syntax they came from, attached out-of-band in the
    instance ``__dict__`` (``repro.span.span_of`` reads it back). The
    span never participates in ``__eq__``/``__hash__``, so structural
    comparison and memoized normalization are unaffected; rewritten
    terms simply lose their spans, which is why :mod:`repro.lint` runs
    its passes on the pre-normalization term.
    """

    __slots__ = ()

    # Unannotated on purpose: an annotation would become an inherited
    # dataclass field and break every positional constructor.
    span = None

    def __str__(self) -> str:  # pragma: no cover - overridden via pretty
        from repro.calculus.pretty import pretty

        return pretty(self)


@dataclass(frozen=True)
class Const(Term):
    """A literal value (number, string, bool, None, or a library value)."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if self.value is True:
            return "true"
        if self.value is False:
            return "false"
        return str(self.value)


@dataclass(frozen=True)
class Var(Term):
    """A variable occurrence."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lambda(Term):
    """Single-parameter abstraction ``\\param. body``."""

    param: str
    body: Term

    def __str__(self) -> str:
        return f"\\{self.param}. {self.body}"


@dataclass(frozen=True)
class Apply(Term):
    """Application ``fn(arg)``."""

    fn: Term
    arg: Term

    def __str__(self) -> str:
        return f"({self.fn})({self.arg})"


@dataclass(frozen=True)
class Let(Term):
    """``let var = value in body`` — convenience binding."""

    var: str
    value: Term
    body: Term

    def __str__(self) -> str:
        return f"let {self.var} = {self.value} in {self.body}"


@dataclass(frozen=True)
class RecordCons(Term):
    """Record construction ``<a1=e1, ..., an=en>``."""

    fields: tuple[tuple[str, Term], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{name}={value}" for name, value in self.fields)
        return f"<{inner}>"

    def field_map(self) -> dict[str, Term]:
        return dict(self.fields)


@dataclass(frozen=True)
class TupleCons(Term):
    """Tuple construction ``(e1, ..., en)``."""

    items: tuple[Term, ...]

    def __str__(self) -> str:
        return f"({', '.join(str(i) for i in self.items)})"


@dataclass(frozen=True)
class Proj(Term):
    """Field projection ``base.name`` (also used for path expressions)."""

    base: Term
    name: str

    def __str__(self) -> str:
        return f"{self.base}.{self.name}"


@dataclass(frozen=True)
class Index(Term):
    """Indexing ``base[index]`` into a vector, list or tuple."""

    base: Term
    index: Term

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class BinOp(Term):
    """Binary operator. ``op`` is one of
    ``+ - * / div mod = != < <= > >= and or in union intersect except``.
    """

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Term):
    """Unary operator: ``not`` or numeric negation ``-``."""

    op: str
    operand: Term

    def __str__(self) -> str:
        # Parenthesized prefix form: unambiguous under postfix operators
        # (``(not x).f`` vs ``not (x.f)``) and parseable back.
        if self.op == "not":
            return f"(not {self.operand})"
        return f"(-{self.operand})"


@dataclass(frozen=True)
class If(Term):
    """Conditional ``if cond then then_branch else else_branch``."""

    cond: Term
    then_branch: Term
    else_branch: Term

    def __str__(self) -> str:
        return f"(if {self.cond} then {self.then_branch} else {self.else_branch})"


@dataclass(frozen=True)
class Empty(Term):
    """``zero(M)`` — the monoid's identity as a term."""

    monoid: MonoidRef

    def __str__(self) -> str:
        return f"zero({self.monoid})"


@dataclass(frozen=True)
class Singleton(Term):
    """``unit(M)(element)``; for vector monoids also carries the index."""

    monoid: MonoidRef
    element: Term
    index: Optional[Term] = None

    def __str__(self) -> str:
        if self.index is not None:
            return f"unit({self.monoid})({self.element} @ {self.index})"
        return f"unit({self.monoid})({self.element})"


@dataclass(frozen=True)
class Merge(Term):
    """``left merge(M) right``."""

    monoid: MonoidRef
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} (+){self.monoid} {self.right})"


@dataclass(frozen=True)
class Generator:
    """Qualifier ``var <- source``, or ``var[index_var] <- source``.

    The indexed form is the paper's vector generator ``a[i] <- x``: it
    binds both the element and its index.
    """

    var: str
    source: Term
    index_var: Optional[str] = None

    def __str__(self) -> str:
        if self.index_var is not None:
            return f"{self.var}[{self.index_var}] <- {self.source}"
        return f"{self.var} <- {self.source}"


@dataclass(frozen=True)
class Filter:
    """Qualifier: a boolean predicate (or an effectful true-returning op)."""

    pred: Term

    def __str__(self) -> str:
        return str(self.pred)


@dataclass(frozen=True)
class Bind:
    """Qualifier ``var == value`` — the paper's binding convention."""

    var: str
    value: Term

    def __str__(self) -> str:
        return f"{self.var} == {self.value}"


Qualifier = Union[Generator, Filter, Bind]


@dataclass(frozen=True)
class Comprehension(Term):
    """``M{ head | q1, ..., qn }`` — the calculus' workhorse."""

    monoid: MonoidRef
    head: Term
    qualifiers: tuple[Qualifier, ...] = ()

    def __str__(self) -> str:
        if not self.qualifiers:
            return f"{self.monoid}{{ {self.head} }}"
        quals = ", ".join(str(q) for q in self.qualifiers)
        return f"{self.monoid}{{ {self.head} | {quals} }}"


@dataclass(frozen=True)
class Hom(Term):
    """Explicit homomorphism ``hom[source -> target](\\var. body)(arg)``."""

    source: MonoidRef
    target: MonoidRef
    var: str
    body: Term
    arg: Term

    def __str__(self) -> str:
        return (
            f"hom[{self.source} -> {self.target}]"
            f"(\\{self.var}. {self.body})({self.arg})"
        )


@dataclass(frozen=True)
class Call(Term):
    """Builtin function call ``name(args...)`` (length, element, abs...)."""

    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class MethodCall(Term):
    """Method invocation ``base.name(args...)`` on a class instance."""

    base: Term
    name: str
    args: tuple[Term, ...] = ()

    def __str__(self) -> str:
        return f"{self.base}.{self.name}({', '.join(str(a) for a in self.args)})"


# ---------------------------------------------------------------------------
# Object operations (section 4.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class New(Term):
    """``new(state)`` — allocate a fresh object, returning its OID."""

    state: Term

    def __str__(self) -> str:
        return f"new({self.state})"


@dataclass(frozen=True)
class Deref(Term):
    """``!e`` — the current state of the object ``e``."""

    target: Term

    def __str__(self) -> str:
        return f"!{self.target}"


@dataclass(frozen=True)
class Assign(Term):
    """``target := value`` — replace the object's state; returns true."""

    target: Term
    value: Term

    def __str__(self) -> str:
        return f"({self.target} := {self.value})"


@dataclass(frozen=True)
class Update(Term):
    """Path update ``base.field op= value`` on an object's record state.

    ``op`` is ``:=`` (replace) or ``+=`` (merge into a numeric or
    collection field). Evaluates to true so it can stand as a qualifier,
    matching the paper's update-program comprehensions.
    """

    base: Term
    field_name: str
    op: str
    value: Term

    def __str__(self) -> str:
        symbol = "+=" if self.op == "+=" else ":="
        return f"({self.base}.{self.field_name} {symbol} {self.value})"


#: Nodes whose evaluation may read or write the object heap. Normalization
#: rules that duplicate or discard terms must treat these conservatively.
EFFECTFUL_NODES = (New, Assign, Update)


def record(**fields: Term) -> RecordCons:
    """Convenience record constructor used by tests and examples."""
    return RecordCons(tuple(fields.items()))
