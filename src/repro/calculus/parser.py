"""A parser for the paper's calculus notation.

Lets tests, docs and interactive sessions write terms exactly as the
paper prints them, instead of via the builder DSL:

>>> from repro.calculus.parser import parse_calculus
>>> str(parse_calculus("set{ (a, b) | a <- Xs, b <- Ys, a < b }"))
'set{ (a, b) | a <- Xs, b <- Ys, (a < b) }'

Supported grammar (superset of what the pretty printer emits)::

    term     := comprehension | if | lambda | let | or-expr
    compr    := MONOID '{' term ('|' qualifier (',' qualifier)*)? '}'
    monoid   := NAME | NAME '[' lambda ']'          (sorted[\\x. e])
              | NAME '[' term ']'                   (vec: sum[8])
    qualifier:= NAME '<-' term                      (generator)
              | NAME '[' NAME ']' '<-' term         (indexed generator)
              | NAME '==' term                      (binding)
              | term                                (predicate)
    lambda   := '\\' NAME '.' term
    if       := 'if' term 'then' term 'else' term
    let      := 'let' NAME '=' term 'in' term
    atoms    := literals, records '<a=e, ...>', tuples '(e, e)',
                zero(M), unit(M)(e), 'new(e)', '!e', 'e := e',
                paths 'x.a.b', indexing 'e[i]', calls 'f(e, ...)',
                merge 'e1 (+)M e2'

Monoid names with a ``[size]`` suffix where the name is a known
primitive monoid (``sum[8]``) denote vector monoids ``M[n]``.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.calculus.ast import (
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Var,
)
from repro.errors import CalculusError
from repro.types.infer import MONOID_PROPS

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow><-)
  | (?P<bind>==)
  | (?P<mergeop>\(\+\))
  | (?P<op><=|>=|!=|:=|[-+*/<>=])
  | (?P<punct>[{}()\[\],.|!@\\])
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_~#]*)
""",
    re.VERBOSE,
)

_KEYWORD_OPS = {"and", "or", "in", "union", "intersect", "except", "div", "mod"}
_MONOID_NAMES = set(MONOID_PROPS) | {"vec"}


def parse_calculus(source: str) -> Term:
    """Parse one calculus term written in the paper's notation."""
    parser = _CalcParser(_tokenize(source))
    term = parser.parse_term()
    parser.expect_end()
    return term


def _tokenize(source: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise CalculusError(
                f"cannot tokenize calculus text at: {source[position:position + 20]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("end", ""))
    return tokens


class _CalcParser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0
        # While parsing a `let` binding's value, the bare keyword `in`
        # terminates the value instead of acting as membership.
        self._no_in = 0
        # While parsing record field values, a bare `>` closes the record
        # rather than comparing (parenthesize comparisons inside records).
        self._no_gt = 0

    # -- plumbing -------------------------------------------------------------

    def _peek(self, offset: int = 0) -> tuple[str, str]:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._pos]
        if token[0] != "end":
            self._pos += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token[0] == kind and (text is None or token[1] == text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: Optional[str] = None) -> str:
        token = self._peek()
        if token[0] != kind or (text is not None and token[1] != text):
            raise CalculusError(
                f"expected {text or kind!r}, found {token[1]!r} in calculus text"
            )
        return self._advance()[1]

    def expect_end(self) -> None:
        if self._peek()[0] != "end":
            raise CalculusError(f"trailing input in calculus text: {self._peek()[1]!r}")

    # -- grammar ----------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self._peek()
        if token == ("punct", "\\"):
            return self._lambda()
        if token == ("name", "if"):
            return self._if()
        if token == ("name", "let"):
            return self._let()
        return self._or_expr()

    def _lambda(self) -> Lambda:
        self._expect("punct", "\\")
        param = self._expect("name")
        self._expect("punct", ".")
        return Lambda(param, self.parse_term())

    def _if(self) -> If:
        self._expect("name", "if")
        cond = self.parse_term()
        self._expect("name", "then")
        then_branch = self.parse_term()
        self._expect("name", "else")
        return If(cond, then_branch, self.parse_term())

    def _let(self) -> Let:
        self._expect("name", "let")
        name = self._expect("name")
        self._expect("op", "=")
        self._no_in += 1
        try:
            value = self.parse_term()
        finally:
            self._no_in -= 1
        self._expect("name", "in")
        return Let(name, value, self.parse_term())

    def _or_expr(self) -> Term:
        node = self._and_expr()
        while self._peek() == ("name", "or"):
            self._advance()
            node = BinOp("or", node, self._and_expr())
        return node

    def _and_expr(self) -> Term:
        node = self._not_expr()
        while self._peek() == ("name", "and"):
            self._advance()
            node = BinOp("and", node, self._not_expr())
        return node

    def _not_expr(self) -> Term:
        if self._peek() == ("name", "not"):
            self._advance()
            return UnOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Term:
        node = self._additive()
        token = self._peek()
        if token[0] == "op" and token[1] in ("=", "!=", "<", "<=", ">", ">="):
            if token[1] == ">" and self._no_gt:
                return node
            op = self._advance()[1]
            return BinOp(op, node, self._additive())
        if token == ("name", "in") and not self._no_in:
            self._advance()
            return BinOp("in", node, self._additive())
        if token[0] == "op" and token[1] == ":=":
            self._advance()
            return Assign(node, self.parse_term())
        return node

    def _additive(self) -> Term:
        node = self._multiplicative()
        while True:
            token = self._peek()
            if token[0] == "op" and token[1] in ("+", "-"):
                op = self._advance()[1]
                node = BinOp(op, node, self._multiplicative())
            elif token[0] == "name" and token[1] in ("union", "except"):
                op = self._advance()[1]
                node = BinOp(op, node, self._multiplicative())
            elif token[0] == "mergeop":
                self._advance()
                ref = self._monoid_ref()
                node = Merge(ref, node, self._multiplicative())
            else:
                return node

    def _multiplicative(self) -> Term:
        node = self._unary()
        while True:
            token = self._peek()
            if token[0] == "op" and token[1] in ("*", "/"):
                op = self._advance()[1]
                node = BinOp(op, node, self._unary())
            elif token[0] == "name" and token[1] in ("div", "mod", "intersect"):
                op = self._advance()[1]
                node = BinOp(op, node, self._unary())
            else:
                return node

    def _unary(self) -> Term:
        token = self._peek()
        if token == ("op", "-"):
            self._advance()
            operand = self._unary()
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return Const(-operand.value)
            return UnOp("-", operand)
        if token == ("punct", "!"):
            self._advance()
            return Deref(self._unary())
        return self._postfix()

    def _postfix(self) -> Term:
        node = self._primary()
        while True:
            if self._accept("punct", "."):
                name = self._expect("name")
                if self._peek() == ("punct", "("):
                    self._advance()
                    args = self._arguments()
                    node = MethodCall(node, name, args)
                else:
                    node = Proj(node, name)
            elif self._peek() == ("punct", "["):
                self._advance()
                index = self.parse_term()
                self._expect("punct", "]")
                node = Index(node, index)
            else:
                return node

    def _arguments(self) -> tuple[Term, ...]:
        if self._accept("punct", ")"):
            return ()
        args = [self.parse_term()]
        while self._accept("punct", ","):
            args.append(self.parse_term())
        self._expect("punct", ")")
        return tuple(args)

    # -- primaries -------------------------------------------------------------------

    def _primary(self) -> Term:
        kind, text = self._peek()
        if kind == "number":
            self._advance()
            return Const(float(text) if "." in text else int(text))
        if kind == "string":
            self._advance()
            body = text[1:-1]
            return Const(re.sub(r"\\(.)", r"\1", body))
        if kind == "punct" and text == "(":
            return self._tuple_or_paren()
        if kind == "punct" and text == "<":  # unreachable: '<' is an op
            pass
        if kind == "op" and text == "<":
            return self._record()
        if kind == "name":
            return self._name_primary()
        raise CalculusError(f"unexpected token {text!r} in calculus text")

    def _tuple_or_paren(self) -> Term:
        self._expect("punct", "(")
        # Parentheses re-enable `>` comparison inside record fields.
        saved_gt, self._no_gt = self._no_gt, 0
        try:
            return self._tuple_or_paren_body()
        finally:
            self._no_gt = saved_gt

    def _tuple_or_paren_body(self) -> Term:
        first = self.parse_term()
        if self._accept("punct", ","):
            items = [first, self.parse_term()]
            while self._accept("punct", ","):
                items.append(self.parse_term())
            self._expect("punct", ")")
            return TupleCons(tuple(items))
        self._expect("punct", ")")
        return first

    def _record(self) -> RecordCons:
        self._expect("op", "<")
        fields: list[tuple[str, Term]] = []
        if not self._accept("op", ">"):
            self._no_gt += 1
            try:
                while True:
                    name = self._expect("name")
                    self._expect("op", "=")
                    fields.append((name, self.parse_term()))
                    if not self._accept("punct", ","):
                        break
            finally:
                self._no_gt -= 1
            self._expect("op", ">")
        return RecordCons(tuple(fields))

    def _name_primary(self) -> Term:
        text = self._peek()[1]
        if text == "true":
            self._advance()
            return Const(True)
        if text == "false":
            self._advance()
            return Const(False)
        if text == "none":
            self._advance()
            return Const(None)
        if text == "zero":
            self._advance()
            self._expect("punct", "(")
            ref = self._monoid_ref()
            self._expect("punct", ")")
            return Empty(ref)
        if text == "unit":
            return self._unit()
        if text == "new":
            self._advance()
            self._expect("punct", "(")
            state = self.parse_term()
            self._expect("punct", ")")
            return New(state)
        if text == "hom":
            return self._hom()
        if self._is_comprehension_head():
            return self._comprehension()
        self._advance()
        if self._peek() == ("punct", "("):
            self._advance()
            return Call(text, self._arguments())
        return Var(text)

    def _unit(self) -> Singleton:
        self._expect("name", "unit")
        self._expect("punct", "(")
        ref = self._monoid_ref()
        self._expect("punct", ")")
        self._expect("punct", "(")
        element = self.parse_term()
        index = None
        if self._accept("punct", "@"):
            index = self.parse_term()
        self._expect("punct", ")")
        return Singleton(ref, element, index)

    def _hom(self) -> Term:
        from repro.calculus.ast import Hom

        self._expect("name", "hom")
        self._expect("punct", "[")
        source = self._monoid_ref()
        self._expect("op", "-")
        self._expect("op", ">")
        target = self._monoid_ref()
        self._expect("punct", "]")
        self._expect("punct", "(")
        fn = self.parse_term()
        self._expect("punct", ")")
        self._expect("punct", "(")
        arg = self.parse_term()
        self._expect("punct", ")")
        if not isinstance(fn, Lambda):
            raise CalculusError("hom requires a lambda: hom[N -> M](\\v. e)(u)")
        return Hom(source, target, fn.param, fn.body, arg)

    # -- comprehensions -----------------------------------------------------------------

    def _is_comprehension_head(self) -> bool:
        kind, text = self._peek()
        if kind != "name" or text not in _MONOID_NAMES:
            return False
        nxt = self._peek(1)
        if nxt == ("punct", "{"):
            return True
        if nxt == ("punct", "["):
            # sorted[\x. e]{ ... } or sum[8]{ ... }: scan for ']' '{'
            depth = 0
            offset = 1
            while True:
                token = self._peek(offset)
                if token[0] == "end":
                    return False
                if token == ("punct", "["):
                    depth += 1
                elif token == ("punct", "]"):
                    depth -= 1
                    if depth == 0:
                        return self._peek(offset + 1) == ("punct", "{")
                offset += 1
        return False

    def _monoid_ref(self) -> MonoidRef:
        name = self._expect("name")
        if self._peek() == ("punct", "["):
            self._advance()
            if name in ("sorted", "sortedbag"):
                key = self.parse_term()
                self._expect("punct", "]")
                return MonoidRef(name, key=key)
            size = self.parse_term()
            self._expect("punct", "]")
            return MonoidRef("vec", element=MonoidRef(name), size=size)
        if name not in _MONOID_NAMES:
            raise CalculusError(f"unknown monoid {name!r} in calculus text")
        return MonoidRef(name)

    def _comprehension(self) -> Comprehension:
        ref = self._monoid_ref()
        self._expect("punct", "{")
        head = self.parse_term()
        head_index = None
        if self._accept("punct", "@"):
            head_index = self.parse_term()
        qualifiers: list[Qualifier] = []
        if self._accept("punct", "|"):
            qualifiers.append(self._qualifier())
            while self._accept("punct", ","):
                qualifiers.append(self._qualifier())
        self._expect("punct", "}")
        if head_index is not None:
            head = TupleCons((head, head_index))
        return Comprehension(ref, head, tuple(qualifiers))

    def _qualifier(self) -> Qualifier:
        kind, text = self._peek()
        if kind == "name":
            nxt = self._peek(1)
            if nxt[0] == "arrow":
                var_name = self._advance()[1]
                self._advance()  # <-
                return Generator(var_name, self.parse_term())
            if (
                nxt == ("punct", "[")
                and self._peek(2)[0] == "name"
                and self._peek(3) == ("punct", "]")
                and self._peek(4)[0] == "arrow"
            ):
                var_name = self._advance()[1]
                self._advance()  # [
                index_name = self._advance()[1]
                self._advance()  # ]
                self._advance()  # <-
                return Generator(var_name, self.parse_term(), index_name)
            if nxt[0] == "bind":
                var_name = self._advance()[1]
                self._advance()  # ==
                return Bind(var_name, self.parse_term())
        return Filter(self.parse_term())
