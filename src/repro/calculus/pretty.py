"""Pretty printer producing the paper's comprehension notation.

``pretty(term)`` renders compactly on one line (the dataclasses'
``__str__`` delegates here implicitly via their own formatting);
``pretty_block`` renders large comprehensions with indentation for
explain output and documentation.
"""

from __future__ import annotations

from repro.calculus.ast import (
    Bind,
    Comprehension,
    Filter,
    Generator,
    Term,
)


def pretty(term: Term) -> str:
    """Single-line rendering in the paper's notation."""
    return str(term)


def pretty_block(term: Term, indent: int = 0) -> str:
    """Multi-line rendering: one qualifier per line for comprehensions.

    >>> from repro.calculus.builders import comp, gen, var, eq
    >>> print(pretty_block(comp("set", var("x"),
    ...     [gen("x", var("db")), eq(var("x"), 1)])))
    set{ x |
      x <- db,
      (x = 1)
    }
    """
    pad = " " * indent
    if not isinstance(term, Comprehension) or not term.qualifiers:
        return pad + str(term)
    lines = [f"{pad}{term.monoid}{{ {term.head} |"]
    inner = " " * (indent + 2)
    rendered = []
    for qual in term.qualifiers:
        if isinstance(qual, Generator) and isinstance(qual.source, Comprehension):
            source = pretty_block(qual.source, indent + 4).lstrip()
            if qual.index_var is not None:
                rendered.append(f"{inner}{qual.var}[{qual.index_var}] <- {source}")
            else:
                rendered.append(f"{inner}{qual.var} <- {source}")
        else:
            rendered.append(f"{inner}{qual}")
    lines.append(",\n".join(rendered))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def describe_qualifier(qual) -> str:
    """A short tag for a qualifier's kind (used by traces and tests)."""
    if isinstance(qual, Generator):
        return "generator"
    if isinstance(qual, Bind):
        return "binding"
    if isinstance(qual, Filter):
        return "predicate"
    return type(qual).__name__
