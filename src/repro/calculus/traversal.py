"""Binding-aware traversal: free variables, substitution, alpha-renaming.

These are the mechanics beneath the paper's variable-binding convention

    M{ e | q, x == u, s }  =  M{ e[u/x] | q, s[u/x] }

and beneath the normalization rules of Table 3, all of which substitute
under binders. Substitution here is capture-avoiding: binders whose
variable occurs free in the replacement are renamed first.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.errors import CalculusError

_fresh_counter = itertools.count(1)


def fresh_var(prefix: str = "v") -> str:
    """A globally fresh variable name, e.g. ``v~17``.

    The ``~`` cannot appear in source-level identifiers, so fresh names
    never collide with user variables.
    """
    return f"{prefix}~{next(_fresh_counter)}"


# ---------------------------------------------------------------------------
# Free variables
# ---------------------------------------------------------------------------


def free_vars(term: Term) -> frozenset[str]:
    """The set of variable names occurring free in ``term``.

    >>> from repro.calculus.builders import var, comp, gen
    >>> sorted(free_vars(comp("set", var("x"), [gen("x", var("db"))])))
    ['db']
    """
    return _free(term, frozenset())


def _free_monoid(ref: MonoidRef, bound: frozenset[str]) -> frozenset[str]:
    out: frozenset[str] = frozenset()
    if ref.key is not None:
        out |= _free(ref.key, bound)
    if ref.size is not None:
        out |= _free(ref.size, bound)
    if ref.element is not None:
        out |= _free_monoid(ref.element, bound)
    return out


def _free(term: Term, bound: frozenset[str]) -> frozenset[str]:
    if isinstance(term, Const):
        return frozenset()
    if isinstance(term, Var):
        return frozenset() if term.name in bound else frozenset((term.name,))
    if isinstance(term, Lambda):
        return _free(term.body, bound | {term.param})
    if isinstance(term, Apply):
        return _free(term.fn, bound) | _free(term.arg, bound)
    if isinstance(term, Let):
        return _free(term.value, bound) | _free(term.body, bound | {term.var})
    if isinstance(term, RecordCons):
        out: frozenset[str] = frozenset()
        for _, value in term.fields:
            out |= _free(value, bound)
        return out
    if isinstance(term, TupleCons):
        out = frozenset()
        for item in term.items:
            out |= _free(item, bound)
        return out
    if isinstance(term, Proj):
        return _free(term.base, bound)
    if isinstance(term, Index):
        return _free(term.base, bound) | _free(term.index, bound)
    if isinstance(term, BinOp):
        return _free(term.left, bound) | _free(term.right, bound)
    if isinstance(term, UnOp):
        return _free(term.operand, bound)
    if isinstance(term, If):
        return (
            _free(term.cond, bound)
            | _free(term.then_branch, bound)
            | _free(term.else_branch, bound)
        )
    if isinstance(term, Empty):
        return _free_monoid(term.monoid, bound)
    if isinstance(term, Singleton):
        out = _free_monoid(term.monoid, bound) | _free(term.element, bound)
        if term.index is not None:
            out |= _free(term.index, bound)
        return out
    if isinstance(term, Merge):
        return (
            _free_monoid(term.monoid, bound)
            | _free(term.left, bound)
            | _free(term.right, bound)
        )
    if isinstance(term, Comprehension):
        out = _free_monoid(term.monoid, bound)
        inner_bound = bound
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                out |= _free(qual.source, inner_bound)
                inner_bound = inner_bound | {qual.var}
                if qual.index_var is not None:
                    inner_bound = inner_bound | {qual.index_var}
            elif isinstance(qual, Bind):
                out |= _free(qual.value, inner_bound)
                inner_bound = inner_bound | {qual.var}
            else:
                out |= _free(qual.pred, inner_bound)
        return out | _free(term.head, inner_bound)
    if isinstance(term, Hom):
        return (
            _free_monoid(term.source, bound)
            | _free_monoid(term.target, bound)
            | _free(term.body, bound | {term.var})
            | _free(term.arg, bound)
        )
    if isinstance(term, Call):
        out = frozenset()
        for arg in term.args:
            out |= _free(arg, bound)
        return out
    if isinstance(term, MethodCall):
        out = _free(term.base, bound)
        for arg in term.args:
            out |= _free(arg, bound)
        return out
    if isinstance(term, New):
        return _free(term.state, bound)
    if isinstance(term, Deref):
        return _free(term.target, bound)
    if isinstance(term, Assign):
        return _free(term.target, bound) | _free(term.value, bound)
    if isinstance(term, Update):
        return _free(term.base, bound) | _free(term.value, bound)
    raise CalculusError(f"free_vars: unknown term {type(term).__name__}")


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------


def substitute(term: Term, var_name: str, replacement: Term) -> Term:
    """Capture-avoiding substitution ``term[replacement / var_name]``.

    >>> from repro.calculus.builders import var, lam
    >>> substitute(var("x"), "x", var("y"))
    Var(name='y')
    """
    return _subst(term, {var_name: replacement})


def substitute_many(term: Term, mapping: dict[str, Term]) -> Term:
    """Simultaneous capture-avoiding substitution."""
    if not mapping:
        return term
    return _subst(term, dict(mapping))


def _subst_monoid(ref: MonoidRef, mapping: dict[str, Term]) -> MonoidRef:
    key = _subst(ref.key, mapping) if ref.key is not None else None
    size = _subst(ref.size, mapping) if ref.size is not None else None
    element = _subst_monoid(ref.element, mapping) if ref.element is not None else None
    if key is ref.key and size is ref.size and element is ref.element:
        return ref
    return MonoidRef(ref.name, key=key, element=element, size=size)


def _needs_rename(bound_var: str, mapping: dict[str, Term]) -> bool:
    return any(
        bound_var in free_vars(repl)
        for name, repl in mapping.items()
        if name != bound_var
    )


def _subst(term: Term, mapping: dict[str, Term]) -> Term:
    if not mapping:
        return term
    if isinstance(term, Const):
        return term
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, Lambda):
        inner = {k: v for k, v in mapping.items() if k != term.param}
        param, body = term.param, term.body
        if _needs_rename(param, inner):
            new_param = fresh_var(param.split("~")[0])
            body = _subst(body, {param: Var(new_param)})
            param = new_param
        return Lambda(param, _subst(body, inner))
    if isinstance(term, Apply):
        return Apply(_subst(term.fn, mapping), _subst(term.arg, mapping))
    if isinstance(term, Let):
        value = _subst(term.value, mapping)
        inner = {k: v for k, v in mapping.items() if k != term.var}
        var_name, body = term.var, term.body
        if _needs_rename(var_name, inner):
            new_name = fresh_var(var_name.split("~")[0])
            body = _subst(body, {var_name: Var(new_name)})
            var_name = new_name
        return Let(var_name, value, _subst(body, inner))
    if isinstance(term, RecordCons):
        return RecordCons(
            tuple((name, _subst(value, mapping)) for name, value in term.fields)
        )
    if isinstance(term, TupleCons):
        return TupleCons(tuple(_subst(item, mapping) for item in term.items))
    if isinstance(term, Proj):
        return Proj(_subst(term.base, mapping), term.name)
    if isinstance(term, Index):
        return Index(_subst(term.base, mapping), _subst(term.index, mapping))
    if isinstance(term, BinOp):
        return BinOp(term.op, _subst(term.left, mapping), _subst(term.right, mapping))
    if isinstance(term, UnOp):
        return UnOp(term.op, _subst(term.operand, mapping))
    if isinstance(term, If):
        return If(
            _subst(term.cond, mapping),
            _subst(term.then_branch, mapping),
            _subst(term.else_branch, mapping),
        )
    if isinstance(term, Empty):
        return Empty(_subst_monoid(term.monoid, mapping))
    if isinstance(term, Singleton):
        return Singleton(
            _subst_monoid(term.monoid, mapping),
            _subst(term.element, mapping),
            _subst(term.index, mapping) if term.index is not None else None,
        )
    if isinstance(term, Merge):
        return Merge(
            _subst_monoid(term.monoid, mapping),
            _subst(term.left, mapping),
            _subst(term.right, mapping),
        )
    if isinstance(term, Comprehension):
        return _subst_comprehension(term, mapping)
    if isinstance(term, Hom):
        inner = {k: v for k, v in mapping.items() if k != term.var}
        var_name, body = term.var, term.body
        if _needs_rename(var_name, inner):
            new_name = fresh_var(var_name.split("~")[0])
            body = _subst(body, {var_name: Var(new_name)})
            var_name = new_name
        return Hom(
            _subst_monoid(term.source, mapping),
            _subst_monoid(term.target, mapping),
            var_name,
            _subst(body, inner),
            _subst(term.arg, mapping),
        )
    if isinstance(term, Call):
        return Call(term.name, tuple(_subst(a, mapping) for a in term.args))
    if isinstance(term, MethodCall):
        return MethodCall(
            _subst(term.base, mapping),
            term.name,
            tuple(_subst(a, mapping) for a in term.args),
        )
    if isinstance(term, New):
        return New(_subst(term.state, mapping))
    if isinstance(term, Deref):
        return Deref(_subst(term.target, mapping))
    if isinstance(term, Assign):
        return Assign(_subst(term.target, mapping), _subst(term.value, mapping))
    if isinstance(term, Update):
        return Update(
            _subst(term.base, mapping),
            term.field_name,
            term.op,
            _subst(term.value, mapping),
        )
    raise CalculusError(f"substitute: unknown term {type(term).__name__}")


def _subst_comprehension(term: Comprehension, mapping: dict[str, Term]) -> Comprehension:
    """Substitute into a comprehension, respecting left-to-right scoping."""
    current = dict(mapping)
    new_quals: list[Qualifier] = []
    renames: dict[str, Term] = {}

    def rebind(var_name: str) -> str:
        nonlocal current
        current = {k: v for k, v in current.items() if k != var_name}
        if _needs_rename(var_name, current):
            new_name = fresh_var(var_name.split("~")[0])
            renames[var_name] = Var(new_name)
            current[var_name] = Var(new_name)
            return new_name
        renames.pop(var_name, None)
        return var_name

    for qual in term.qualifiers:
        if isinstance(qual, Generator):
            source = _subst(qual.source, current)
            var_name = rebind(qual.var)
            index_name = qual.index_var
            if index_name is not None:
                index_name = rebind(index_name)
            new_quals.append(Generator(var_name, source, index_name))
        elif isinstance(qual, Bind):
            value = _subst(qual.value, current)
            var_name = rebind(qual.var)
            new_quals.append(Bind(var_name, value))
        else:
            new_quals.append(Filter(_subst(qual.pred, current)))
    head = _subst(term.head, current)
    return Comprehension(
        _subst_monoid(term.monoid, mapping), head, tuple(new_quals)
    )


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every proper subterm, pre-order."""
    yield term
    for child in children(term):
        yield from subterms(child)


def children(term: Term) -> Iterable[Term]:
    """Direct subterms of a node (including monoid key/size terms)."""
    if isinstance(term, (Const, Var)):
        return ()
    if isinstance(term, Lambda):
        return (term.body,)
    if isinstance(term, Apply):
        return (term.fn, term.arg)
    if isinstance(term, Let):
        return (term.value, term.body)
    if isinstance(term, RecordCons):
        return tuple(value for _, value in term.fields)
    if isinstance(term, TupleCons):
        return term.items
    if isinstance(term, Proj):
        return (term.base,)
    if isinstance(term, Index):
        return (term.base, term.index)
    if isinstance(term, BinOp):
        return (term.left, term.right)
    if isinstance(term, UnOp):
        return (term.operand,)
    if isinstance(term, If):
        return (term.cond, term.then_branch, term.else_branch)
    if isinstance(term, Empty):
        return _monoid_children(term.monoid)
    if isinstance(term, Singleton):
        extra = (term.index,) if term.index is not None else ()
        return _monoid_children(term.monoid) + (term.element,) + extra
    if isinstance(term, Merge):
        return _monoid_children(term.monoid) + (term.left, term.right)
    if isinstance(term, Comprehension):
        out: list[Term] = list(_monoid_children(term.monoid))
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                out.append(qual.source)
            elif isinstance(qual, Bind):
                out.append(qual.value)
            else:
                out.append(qual.pred)
        out.append(term.head)
        return tuple(out)
    if isinstance(term, Hom):
        return (
            _monoid_children(term.source)
            + _monoid_children(term.target)
            + (term.body, term.arg)
        )
    if isinstance(term, Call):
        return term.args
    if isinstance(term, MethodCall):
        return (term.base, *term.args)
    if isinstance(term, New):
        return (term.state,)
    if isinstance(term, Deref):
        return (term.target,)
    if isinstance(term, Assign):
        return (term.target, term.value)
    if isinstance(term, Update):
        return (term.base, term.value)
    raise CalculusError(f"children: unknown term {type(term).__name__}")


def _monoid_children(ref: MonoidRef) -> tuple[Term, ...]:
    out: list[Term] = []
    if ref.key is not None:
        out.append(ref.key)
    if ref.size is not None:
        out.append(ref.size)
    if ref.element is not None:
        out.extend(_monoid_children(ref.element))
    return tuple(out)


def term_size(term: Term) -> int:
    """Number of AST nodes — used to show normalization terminates."""
    return sum(1 for _ in subterms(term))


def has_effects(term: Term) -> bool:
    """True if evaluating ``term`` may read or write the object heap.

    Normalization rules that duplicate, reorder or discard a subterm
    must not fire on effectful subterms (``new``, ``:=``, ``+=``, and
    dereferences, whose value depends on heap state).
    """
    from repro.calculus.ast import Assign as _Assign
    from repro.calculus.ast import Deref as _Deref
    from repro.calculus.ast import New as _New
    from repro.calculus.ast import Update as _Update

    return any(
        isinstance(sub, (_New, _Assign, _Update, _Deref)) for sub in subterms(term)
    )


def alpha_equal(left: Term, right: Term) -> bool:
    """Structural equality up to renaming of bound variables."""
    return _alpha(left, right, {}, {})


def _alpha(left: Term, right: Term, lmap: dict[str, str], rmap: dict[str, str]) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, Var):
        lname = lmap.get(left.name, left.name)
        rname = rmap.get(right.name, right.name)
        return lname == rname
    if isinstance(left, Lambda):
        token = fresh_var("α")
        return _alpha(
            left.body,
            right.body,
            {**lmap, left.param: token},
            {**rmap, right.param: token},
        )
    if isinstance(left, Let):
        token = fresh_var("α")
        return _alpha(left.value, right.value, lmap, rmap) and _alpha(
            left.body,
            right.body,
            {**lmap, left.var: token},
            {**rmap, right.var: token},
        )
    if isinstance(left, Hom):
        token = fresh_var("α")
        return (
            _alpha_monoid(left.source, right.source, lmap, rmap)
            and _alpha_monoid(left.target, right.target, lmap, rmap)
            and _alpha(left.arg, right.arg, lmap, rmap)
            and _alpha(
                left.body,
                right.body,
                {**lmap, left.var: token},
                {**rmap, right.var: token},
            )
        )
    if isinstance(left, Comprehension):
        if len(left.qualifiers) != len(right.qualifiers):
            return False
        if not _alpha_monoid(left.monoid, right.monoid, lmap, rmap):
            return False
        lmap, rmap = dict(lmap), dict(rmap)
        for lq, rq in zip(left.qualifiers, right.qualifiers):
            if type(lq) is not type(rq):
                return False
            if isinstance(lq, Generator):
                if not _alpha(lq.source, rq.source, lmap, rmap):
                    return False
                token = fresh_var("α")
                lmap[lq.var] = token
                rmap[rq.var] = token
                if (lq.index_var is None) != (rq.index_var is None):
                    return False
                if lq.index_var is not None:
                    itoken = fresh_var("α")
                    lmap[lq.index_var] = itoken
                    rmap[rq.index_var] = itoken
            elif isinstance(lq, Bind):
                if not _alpha(lq.value, rq.value, lmap, rmap):
                    return False
                token = fresh_var("α")
                lmap[lq.var] = token
                rmap[rq.var] = token
            else:
                if not _alpha(lq.pred, rq.pred, lmap, rmap):
                    return False
        return _alpha(left.head, right.head, lmap, rmap)
    # Generic case: compare non-term fields, then recurse on children.
    lchildren = tuple(children(left))
    rchildren = tuple(children(right))
    if len(lchildren) != len(rchildren):
        return False
    if not _same_shape(left, right):
        return False
    return all(_alpha(lc, rc, lmap, rmap) for lc, rc in zip(lchildren, rchildren))


def _alpha_monoid(
    left: MonoidRef, right: MonoidRef, lmap: dict[str, str], rmap: dict[str, str]
) -> bool:
    if left.name != right.name:
        return False
    if (left.key is None) != (right.key is None):
        return False
    if left.key is not None and not _alpha(left.key, right.key, lmap, rmap):
        return False
    if (left.size is None) != (right.size is None):
        return False
    if left.size is not None and not _alpha(left.size, right.size, lmap, rmap):
        return False
    if (left.element is None) != (right.element is None):
        return False
    if left.element is not None:
        return _alpha_monoid(left.element, right.element, lmap, rmap)
    return True


def _same_shape(left: Term, right: Term) -> bool:
    """Compare the non-term payload of two same-type nodes."""
    if isinstance(left, Const):
        return left.value == right.value
    if isinstance(left, (Proj, MethodCall, Call)):
        return left.name == right.name
    if isinstance(left, RecordCons):
        return tuple(n for n, _ in left.fields) == tuple(n for n, _ in right.fields)
    if isinstance(left, (BinOp, UnOp)):
        return left.op == right.op
    if isinstance(left, Update):
        return left.field_name == right.field_name and left.op == right.op
    if isinstance(left, (Empty, Singleton, Merge)):
        return left.monoid.name == right.monoid.name
    return True
