"""Ergonomic constructors for calculus terms.

Writing raw dataclass constructors is verbose; these helpers let tests,
examples and the OQL translator build terms close to the paper's
notation:

>>> q = comp("set", tup(var("a"), var("b")),
...          [gen("a", const((1, 2, 3))), gen("b", const((4, 5)))])
>>> str(q)
'set{ (a, b) | a <- (1, 2, 3), b <- (4, 5) }'
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Union

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)

TermLike = Union[Term, int, float, bool, str, None, tuple, frozenset]


def as_term(value: TermLike) -> Term:
    """Coerce a Python literal into a term; terms pass through."""
    if isinstance(value, Term):
        return value
    return Const(value)


def const(value: Any) -> Const:
    """A literal term."""
    return Const(value)


def var(name: str) -> Var:
    """A variable occurrence."""
    return Var(name)


def lam(param: str, body: TermLike) -> Lambda:
    """``\\param. body``."""
    return Lambda(param, as_term(body))


def apply(fn: TermLike, arg: TermLike) -> Apply:
    return Apply(as_term(fn), as_term(arg))


def let(name: str, value: TermLike, body: TermLike) -> Let:
    return Let(name, as_term(value), as_term(body))


def rec(**fields: TermLike) -> RecordCons:
    """``<name=value, ...>``."""
    return RecordCons(tuple((k, as_term(v)) for k, v in fields.items()))


def tup(*items: TermLike) -> TupleCons:
    """``(e1, ..., en)``."""
    return TupleCons(tuple(as_term(i) for i in items))


def proj(base: TermLike, *names: str) -> Term:
    """``base.n1.n2...`` — a path expression."""
    term = as_term(base)
    for name in names:
        term = Proj(term, name)
    return term


def path(*parts: str) -> Term:
    """``v.f1.f2...`` from dotted names; first part is a variable."""
    term: Term = Var(parts[0])
    for name in parts[1:]:
        term = Proj(term, name)
    return term


def index(base: TermLike, idx: TermLike) -> Index:
    return Index(as_term(base), as_term(idx))


def binop(op: str, left: TermLike, right: TermLike) -> BinOp:
    return BinOp(op, as_term(left), as_term(right))


def eq(left: TermLike, right: TermLike) -> BinOp:
    return binop("=", left, right)


def ne(left: TermLike, right: TermLike) -> BinOp:
    return binop("!=", left, right)


def lt(left: TermLike, right: TermLike) -> BinOp:
    return binop("<", left, right)


def le(left: TermLike, right: TermLike) -> BinOp:
    return binop("<=", left, right)


def gt(left: TermLike, right: TermLike) -> BinOp:
    return binop(">", left, right)


def ge(left: TermLike, right: TermLike) -> BinOp:
    return binop(">=", left, right)


def add(left: TermLike, right: TermLike) -> BinOp:
    return binop("+", left, right)


def sub(left: TermLike, right: TermLike) -> BinOp:
    return binop("-", left, right)


def mul(left: TermLike, right: TermLike) -> BinOp:
    return binop("*", left, right)


def div(left: TermLike, right: TermLike) -> BinOp:
    return binop("/", left, right)


def and_(left: TermLike, right: TermLike) -> BinOp:
    return binop("and", left, right)


def or_(left: TermLike, right: TermLike) -> BinOp:
    return binop("or", left, right)


def in_(left: TermLike, right: TermLike) -> BinOp:
    """OQL-style membership; the translator expands it to ``some{...}``."""
    return binop("in", left, right)


def not_(operand: TermLike) -> UnOp:
    return UnOp("not", as_term(operand))


def neg(operand: TermLike) -> UnOp:
    return UnOp("-", as_term(operand))


def if_(cond: TermLike, then: TermLike, els: TermLike) -> If:
    return If(as_term(cond), as_term(then), as_term(els))


def mref(name: str, key: Term | None = None) -> MonoidRef:
    """A monoid reference by name, optionally with a ``sorted`` key."""
    return MonoidRef(name, key=key)


def vec_ref(element: str | MonoidRef, size: TermLike) -> MonoidRef:
    """``M[n]`` — a vector monoid reference."""
    element_ref = element if isinstance(element, MonoidRef) else MonoidRef(element)
    return MonoidRef("vec", element=element_ref, size=as_term(size))


def zero(monoid: str | MonoidRef) -> Empty:
    return Empty(_as_ref(monoid))


def unit(monoid: str | MonoidRef, element: TermLike, at: TermLike | None = None) -> Singleton:
    return Singleton(
        _as_ref(monoid), as_term(element), as_term(at) if at is not None else None
    )


def merge(monoid: str | MonoidRef, left: TermLike, right: TermLike) -> Merge:
    return Merge(_as_ref(monoid), as_term(left), as_term(right))


def gen(var_name: str, source: TermLike, at: str | None = None) -> Generator:
    """Generator qualifier ``var <- source`` or ``var[at] <- source``."""
    return Generator(var_name, as_term(source), index_var=at)


def filt(pred: TermLike) -> Filter:
    """Predicate qualifier."""
    return Filter(as_term(pred))


def bind(var_name: str, value: TermLike) -> Bind:
    """Binding qualifier ``var == value``."""
    return Bind(var_name, as_term(value))


def _as_qualifier(item: Union[Qualifier, TermLike]) -> Qualifier:
    if isinstance(item, (Generator, Filter, Bind)):
        return item
    return Filter(as_term(item))


def comp(
    monoid: str | MonoidRef,
    head: TermLike,
    qualifiers: Sequence[Union[Qualifier, TermLike]] = (),
) -> Comprehension:
    """``M{ head | qualifiers }``; bare terms become predicates.

    >>> str(comp("sum", var("a"), [gen("a", const((1, 2, 3))), le(var("a"), 2)]))
    'sum{ a | a <- (1, 2, 3), (a <= 2) }'
    """
    return Comprehension(
        _as_ref(monoid),
        as_term(head),
        tuple(_as_qualifier(q) for q in qualifiers),
    )


def hom(
    source: str | MonoidRef,
    target: str | MonoidRef,
    var_name: str,
    body: TermLike,
    arg: TermLike,
) -> Hom:
    """Explicit homomorphism ``hom[source -> target](\\var. body)(arg)``."""
    return Hom(_as_ref(source), _as_ref(target), var_name, as_term(body), as_term(arg))


def call(name: str, *args: TermLike) -> Call:
    return Call(name, tuple(as_term(a) for a in args))


def method(base: TermLike, name: str, *args: TermLike) -> MethodCall:
    return MethodCall(as_term(base), name, tuple(as_term(a) for a in args))


def new(state: TermLike) -> New:
    """``new(state)`` — section 4.2 object creation."""
    return New(as_term(state))


def deref(target: TermLike) -> Deref:
    """``!target``."""
    return Deref(as_term(target))


def assign(target: TermLike, value: TermLike) -> Assign:
    """``target := value``."""
    return Assign(as_term(target), as_term(value))


def update(base: TermLike, field_name: str, op: str, value: TermLike) -> Update:
    """``base.field op= value`` with op ``:=`` or ``+=``."""
    return Update(as_term(base), field_name, op, as_term(value))


def conjunction(preds: Iterable[Term]) -> Term:
    """Fold predicates with ``and``; empty input yields ``true``."""
    result: Term | None = None
    for pred in preds:
        result = pred if result is None else BinOp("and", result, pred)
    return result if result is not None else Const(True)


def _as_ref(monoid: str | MonoidRef) -> MonoidRef:
    return monoid if isinstance(monoid, MonoidRef) else MonoidRef(monoid)
