"""Section 4.1's vector/array examples as monoid comprehensions.

Each function here *builds a calculus term* — a vector comprehension —
and evaluates it with the reference evaluator, so the examples are real
queries, not Python reimplementations:

- :func:`reverse_query` — ``vec[n]{ a @ (n-1-i) | a[i] <- x }`` (the
  paper's reversal example);
- :func:`subsequence_query`, :func:`permute_query`;
- :func:`inner_product_query` — an aggregation over two vectors;
- :func:`matmul_query`, :func:`transpose_query` — nested vector
  comprehensions over vector-of-vector matrices;
- :func:`histogram_query` — slot collisions merged by ``sum`` (the
  reason ``M[n]`` is deliberately *not* freely generated);
- :func:`fft_query` — Buneman's "FFT as a database query" [7]: a
  bit-reversal permutation comprehension followed by ``log2 n``
  butterfly-stage comprehensions over the complex-sum monoid.

Two auxiliary monoids are registered on import:

- ``csum`` — complex numbers as ``(re, im)`` pairs under addition
  (commutative, not idempotent), the element monoid of FFT stages;
- ``cell`` — the write-once cell (zero ``None``; merging two non-None
  values is an error), giving *free* vectors for permutations and row
  assembly, where each slot must be written exactly once.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.calculus.builders import call, comp, const, ge, gen, index, lt, mul, sub, var
from repro.errors import MonoidError
from repro.eval.evaluator import Evaluator
from repro.monoids import PrimitiveMonoid, default_registry
from repro.values import Vector
from repro.vectors.comprehension import vcomp


def _complex_add(left: tuple, right: tuple) -> tuple:
    return (left[0] + right[0], left[1] + right[1])


def _cell_merge(left: Any, right: Any) -> Any:
    if left is None:
        return right
    if right is None:
        return left
    raise MonoidError(
        "cell monoid collision: a free vector slot was written twice"
    )


def _register_aux_monoids() -> None:
    registry = default_registry()
    if "csum" not in registry:
        registry.register(
            PrimitiveMonoid(
                "csum",
                zero_value=(0.0, 0.0),
                merge_fn=_complex_add,
                commutative=True,
                idempotent=False,
                doc="Complex addition over (re, im) pairs.",
            )
        )
    if "cell" not in registry:
        registry.register(
            PrimitiveMonoid(
                "cell",
                zero_value=None,
                merge_fn=_cell_merge,
                commutative=True,
                idempotent=True,
                doc="Write-once cell: merging two set slots is an error.",
            )
        )


_register_aux_monoids()

# The static property table must know the auxiliary monoids too.
from repro.types.infer import MONOID_PROPS  # noqa: E402  (after registration)

MONOID_PROPS.setdefault("csum", (True, False, False))
MONOID_PROPS.setdefault("cell", (True, True, False))


# ---------------------------------------------------------------------------
# FFT butterflies (builtins keeping the comprehension structure visible)
# ---------------------------------------------------------------------------


def _bit_reverse(i: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def _butterfly_target(i: int, t: int, half: int) -> int:
    """Output slot ``t`` of input slot ``i``'s butterfly pair."""
    return (i & ~half) if t == 0 else (i | half)


def _butterfly_coef(a: tuple, i: int, t: int, half: int, n: int) -> tuple:
    """The coefficient-scaled contribution of input ``a`` at slot ``i``.

    For the pair (lo, hi) with ``hi = lo + half`` and twiddle
    ``w = e^(-2 pi i k / n)``::

        out[lo] = in[lo] + w * in[hi]
        out[hi] = in[lo] - w * in[hi]
    """
    k = (i % half) * (n // (2 * half)) if half else 0
    if i & half == 0:
        coef = (1.0, 0.0)
    else:
        angle = -2.0 * math.pi * k / n
        coef = (math.cos(angle), math.sin(angle))
        if t == 1:
            coef = (-coef[0], -coef[1])
    re = coef[0] * a[0] - coef[1] * a[1]
    im = coef[0] * a[1] + coef[1] * a[0]
    return (re, im)


VECTOR_BUILTINS = {
    "bitrev": _bit_reverse,
    "bf_target": _butterfly_target,
    "bf_coef": _butterfly_coef,
}


def _evaluator(bindings: dict[str, Any]) -> Evaluator:
    return Evaluator(bindings, functions=VECTOR_BUILTINS)


def _as_vector(values: Sequence[Any], default: Any = 0) -> Vector:
    if isinstance(values, Vector):
        return values
    return Vector.from_dense(list(values), default=default)


# ---------------------------------------------------------------------------
# The example queries
# ---------------------------------------------------------------------------


def reverse_query(values: Sequence[float]) -> list:
    """``vec[n]{ a @ (n-1-i) | a[i] <- x }`` — the paper's reversal.

    >>> reverse_query([1, 2, 3, 4])
    [4, 3, 2, 1]
    """
    n = len(values)
    term = vcomp("sum", n, var("a"), sub(const(n - 1), var("i")), [gen("a", var("x"), at="i")])
    result = _evaluator({"x": _as_vector(values)}).evaluate(term)
    return result.to_list()


def subsequence_query(values: Sequence[float], lo: int, hi: int) -> list:
    """``vec[hi-lo]{ a @ (i-lo) | a[i] <- x, lo <= i, i < hi }``.

    >>> subsequence_query([10, 20, 30, 40, 50], 1, 4)
    [20, 30, 40]
    """
    term = vcomp(
        "sum",
        hi - lo,
        var("a"),
        sub(var("i"), const(lo)),
        [
            gen("a", var("x"), at="i"),
            ge(var("i"), const(lo)),
            lt(var("i"), const(hi)),
        ],
    )
    result = _evaluator({"x": _as_vector(values)}).evaluate(term)
    return result.to_list()


def permute_query(values: Sequence[Any], permutation: Sequence[int]) -> list:
    """``vec[n]{ a @ p[i] | a[i] <- x }`` over the write-once cell monoid.

    >>> permute_query(["a", "b", "c"], [2, 0, 1])
    ['b', 'c', 'a']
    """
    n = len(values)
    if sorted(permutation) != list(range(n)):
        raise ValueError("permutation must be a bijection on 0..n-1")
    term = vcomp(
        "cell", n, var("a"), index(var("p"), var("i")), [gen("a", var("x"), at="i")]
    )
    bindings = {
        "x": _as_vector(values, default=None),
        "p": _as_vector(permutation, default=-1),
    }
    result = _evaluator(bindings).evaluate(term)
    return result.to_list()


def inner_product_query(xs: Sequence[float], ys: Sequence[float]) -> float:
    """``sum{ a * y[i] | a[i] <- x }`` — aggregation over vectors.

    >>> inner_product_query([1, 2, 3], [4, 5, 6])
    32
    """
    if len(xs) != len(ys):
        raise ValueError("inner product requires equal-length vectors")
    term = comp(
        "sum",
        mul(var("a"), index(var("y"), var("i"))),
        [gen("a", var("x"), at="i")],
    )
    return _evaluator({"x": _as_vector(xs), "y": _as_vector(ys)}).evaluate(term)


def transpose_query(matrix: Sequence[Sequence[float]]) -> list[list]:
    """Nested vector comprehensions computing the transpose.

    >>> transpose_query([[1, 2, 3], [4, 5, 6]])
    [[1, 4], [2, 5], [3, 6]]
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    inner = vcomp(
        "cell",
        rows,
        index(index(var("A"), var("i")), var("j")),
        var("i"),
        [gen("i", call("range", const(rows)))],
    )
    term = vcomp("cell", cols, inner, var("j"), [gen("j", call("range", const(cols)))])
    value = _evaluator({"A": _matrix_value(matrix)}).evaluate(term)
    return [row.to_list() for row in value]


def matmul_query(
    a: Sequence[Sequence[float]], b: Sequence[Sequence[float]]
) -> list[list]:
    """``C[i][j] = sum{ arow[k] * B[k][j] }`` as nested comprehensions.

    >>> matmul_query([[1, 2], [3, 4]], [[5, 6], [7, 8]])
    [[19, 22], [43, 50]]
    """
    n = len(a)
    inner_dim = len(b)
    m = len(b[0]) if inner_dim else 0
    if any(len(row) != inner_dim for row in a):
        raise ValueError("inner dimensions do not match")
    row_term = vcomp(
        "sum",
        m,
        mul(var("av"), var("bv")),
        var("j"),
        [
            gen("av", var("arow"), at="k"),
            gen("bv", index(var("B"), var("k")), at="j"),
        ],
    )
    term = vcomp("cell", n, row_term, var("i"), [gen("arow", var("A"), at="i")])
    value = _evaluator({"A": _matrix_value(a), "B": _matrix_value(b)}).evaluate(term)
    return [row.to_list() for row in value]


def histogram_query(values: Sequence[float], buckets: int, width: float) -> list:
    """``vec[sum, buckets]{ 1 @ (v div width) | v <- data }``.

    Several inputs land on the same slot; the ``sum`` element monoid
    merges them — the collision behaviour the paper highlights.

    >>> histogram_query([0, 1, 1, 2, 5], buckets=3, width=2)
    [3, 1, 1]
    """
    from repro.calculus.builders import binop

    term = vcomp(
        "sum",
        buckets,
        const(1),
        binop("div", var("v"), const(width)),
        [gen("v", const(tuple(values))), lt(binop("div", var("v"), const(width)), const(buckets))],
    )
    return _evaluator({}).evaluate(term).to_list()


# ---------------------------------------------------------------------------
# FFT as a database query
# ---------------------------------------------------------------------------


def fft_query(values: Sequence[complex]) -> list[complex]:
    """Radix-2 FFT where every stage is a vector comprehension.

    Stage 0 is the bit-reversal permutation
    ``cell[n]{ a @ bitrev(i, bits) | a[i] <- x }``; each of the
    ``log2 n`` butterfly stages is
    ``csum[n]{ bf_coef(a,i,t,half,n) @ bf_target(i,t,half)
    | a[i] <- x, t <- [0, 1] }`` — two contributions per input element,
    merged into the output slots by complex addition. This is the
    computation reference [7] (Buneman) expresses as a query.

    >>> [round(abs(v), 6) for v in fft_query([1, 1, 1, 1])]
    [4.0, 0.0, 0.0, 0.0]
    """
    n = len(values)
    if n == 0:
        return []
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise ValueError(f"FFT size must be a power of two, got {n}")
    pairs = [(complex(v).real, complex(v).imag) for v in values]
    current = Vector.from_dense(pairs, default=(0.0, 0.0))

    if n > 1:
        permute = vcomp(
            "cell",
            n,
            var("a"),
            call("bitrev", var("i"), const(bits)),
            [gen("a", var("x"), at="i")],
        )
        shuffled = _evaluator({"x": Vector.from_dense(pairs, default=None)}).evaluate(permute)
        current = Vector.from_dense(shuffled.to_list(), default=(0.0, 0.0))

    stage = vcomp(
        "csum",
        n,
        call("bf_coef", var("a"), var("i"), var("t"), var("half"), const(n)),
        call("bf_target", var("i"), var("t"), var("half")),
        [gen("a", var("x"), at="i"), gen("t", const((0, 1)))],
    )
    half = 1
    while half < n:
        ev = _evaluator({"x": current, "half": half})
        current = ev.evaluate(stage)
        half *= 2
    return [complex(re, im) for re, im in current.to_list()]


def _matrix_value(matrix: Sequence[Sequence[float]]) -> Vector:
    rows = [Vector.from_dense(list(row)) for row in matrix]
    return Vector.from_dense(rows, default=None)
