"""Vectors and arrays as monoids (section 4.1)."""

from repro.vectors.comprehension import at, vcomp, vec, veval
from repro.vectors.linalg import (
    VECTOR_BUILTINS,
    fft_query,
    histogram_query,
    inner_product_query,
    matmul_query,
    permute_query,
    reverse_query,
    subsequence_query,
    transpose_query,
)

__all__ = [
    "VECTOR_BUILTINS",
    "at",
    "fft_query",
    "histogram_query",
    "inner_product_query",
    "matmul_query",
    "permute_query",
    "reverse_query",
    "subsequence_query",
    "transpose_query",
    "vcomp",
    "vec",
    "veval",
]
