"""Vector comprehensions (section 4.1): builders and evaluation helpers.

The paper proposes two pieces of syntax beyond ordinary comprehensions:

- the **indexed generator** ``a[i] <- x``, binding each element of the
  vector ``x`` *and* its index, with no order imposed on access;
- the **indexed head** ``e @ j`` (the paper writes ``e[j]`` on the left
  of the bar), directing each produced element to slot ``j`` of the
  output vector; colliding slots are combined by the element monoid's
  merge.

Both are first-class in the core calculus (``Generator.index_var`` and
the vector head pair); this module adds the ergonomic layer: ``vcomp``
builds a ``vec[n]`` comprehension from a head element, a head index and
qualifiers, and ``veval`` evaluates with plain Python lists in and out.
"""

from __future__ import annotations

from typing import Any, Sequence, Union

from repro.calculus.ast import Comprehension, MonoidRef, Qualifier, Term, TupleCons
from repro.calculus.builders import as_term, gen
from repro.eval.evaluator import Evaluator
from repro.values import Vector


def vec(element_monoid: str, size: Union[Term, int]) -> MonoidRef:
    """The monoid reference ``M[n]``, e.g. ``vec("sum", 8)``."""
    return MonoidRef("vec", element=MonoidRef(element_monoid), size=as_term(size))


def at(element: Any, index: Any) -> TupleCons:
    """An indexed head ``element @ index`` for a vector comprehension."""
    return TupleCons((as_term(element), as_term(index)))


def vcomp(
    element_monoid: str,
    size: Union[Term, int],
    head_element: Any,
    head_index: Any,
    qualifiers: Sequence[Union[Qualifier, Term]] = (),
) -> Comprehension:
    """Build ``M[n]{ head_element @ head_index | qualifiers }``.

    >>> from repro.calculus import var, sub, const
    >>> n = 4
    >>> reverse = vcomp("sum", n, var("a"), sub(const(n - 1), var("i")),
    ...                 [gen("a", var("x"), at="i")])
    >>> str(reverse)
    'sum[4]{ (a, (3 - i)) | a[i] <- x }'
    """
    from repro.calculus.builders import comp

    return comp(
        vec(element_monoid, size), at(head_element, head_index), list(qualifiers)
    )


def veval(
    term: Term,
    bindings: dict[str, Any] | None = None,
    evaluator: Evaluator | None = None,
) -> Any:
    """Evaluate a (vector) term; Python lists bind as :class:`Vector`.

    Input lists in ``bindings`` are converted to vectors (default fill
    0); a vector result is returned as a plain list.
    """
    converted = {
        name: Vector.from_dense(value) if isinstance(value, list) else value
        for name, value in (bindings or {}).items()
    }
    ev = evaluator if evaluator is not None else Evaluator(converted)
    result = ev.evaluate(term) if evaluator is None else ev.evaluate(term)
    if isinstance(result, Vector):
        return result.to_list()
    return result
