"""Configuration and enablement for the closure-compiling JIT.

Mirrors the cache/telemetry/parallel opt-in convention exactly: the
JIT is **off by default** and the interpreted pipeline is
byte-identical to the seed. It turns on via ``Database(jit=...)``,
``Database.enable_jit()`` or the ``REPRO_JIT`` environment flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import DatabaseError

_FALSEY = ("", "0", "false", "off", "no")


def jit_env_enabled() -> bool:
    """Is the ``REPRO_JIT`` environment flag set (and not falsey)?"""
    return os.environ.get("REPRO_JIT", "").strip().lower() not in _FALSEY


@dataclass
class JITConfig:
    """Tuning knobs for the closure compiler.

    ``verify`` controls the per-row differential check (every compiled
    expression re-evaluated on the reference interpreter, results
    compared): ``None`` defers to ``REPRO_VERIFY`` /
    :func:`repro.analysis.verifier.verification`, matching the rewrite
    verifier's convention; ``True``/``False`` force it for executors
    built from this config.
    """

    verify: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.verify is not None and not isinstance(self.verify, bool):
            raise DatabaseError("jit verify must be None or a bool")


def config_from_env() -> JITConfig:
    """A :class:`JITConfig` from ``REPRO_JIT`` (any truthy value gives
    the defaults — there are no numeric knobs to parse)."""
    return JITConfig()


def resolve_jit(jit: Any) -> Optional[JITConfig]:
    """Normalize ``Database(jit=...)`` to a config or None.

    ``None`` defers to the ``REPRO_JIT`` environment flag (unset or
    falsey → JIT off, the byte-for-byte-unchanged default).
    ``True``/``False`` force it; a :class:`JITConfig` is used as-is.
    """
    if jit is None:
        return config_from_env() if jit_env_enabled() else None
    if jit is False:
        return None
    if jit is True:
        return JITConfig()
    if isinstance(jit, JITConfig):
        return jit
    raise DatabaseError(
        f"jit must be None, a bool or a JITConfig, got {type(jit).__name__}"
    )
