"""Closure compilation (JIT) of calculus expressions on the hot path.

Section 3's normalization leaves only small first-order terms in
operator positions, so they compile cleanly to Python closures —
:mod:`repro.jit.compiler` translates them, :mod:`repro.jit.plan`
attaches the closures to physical plan nodes at plan-build time, and
the executor's hot loops call them instead of re-walking ASTs per row.
See ``docs/JIT.md`` for what compiles, what falls back, and the
interaction with cache/parallel/verify.

Off by default; enable with ``Database(jit=...)``,
``Database.enable_jit()`` or ``REPRO_JIT=1``.
"""

from repro.jit.compiler import CompiledFn, compile_term, may_capture
from repro.jit.config import (
    JITConfig,
    config_from_env,
    jit_env_enabled,
    resolve_jit,
)
from repro.jit.plan import (
    compile_node,
    node_fallbacks,
    plan_fallback_constructs,
    precompile_plan,
)
from repro.jit.runtime import Runtime

__all__ = [
    "CompiledFn",
    "JITConfig",
    "Runtime",
    "compile_node",
    "compile_term",
    "config_from_env",
    "jit_env_enabled",
    "may_capture",
    "node_fallbacks",
    "plan_fallback_constructs",
    "precompile_plan",
    "resolve_jit",
]
