"""QL501 — interpreter fallback in a hot loop.

The JIT compiles the operator-position fragment; anything outside it
(nested comprehensions in a predicate, user function calls, method
calls, object effects) silently falls back to the reference
interpreter for that one expression. That is the correct *semantics*,
but when such an expression sits on a demonstrably hot query's per-row
path it quietly forfeits the compiled speedup. This module crosses the
compiler's fallback report with the telemetry fingerprint table, the
same runtime-informed pattern as QL402: a diagnostic fires only for
query classes that dominate measured runtime, and it names the
offending construct(s) so the query author knows exactly what to hoist
or rewrite.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.telemetry.fingerprint import QueryStats
from repro.obs.telemetry.registry import MetricsRegistry, get_registry


def hot_fallbacks(db: Any, entry: QueryStats) -> dict[str, int]:
    """Fallback-construct histogram for one hot query class.

    Re-runs the compile front half on the fingerprint's example query
    (translate → normalize → plan → optimize → precompile) and reports
    which constructs failed to compile. Empty when the query no longer
    compiles to an algebra plan at all (then nothing of it is on the
    JIT path) or every expression compiled.
    """
    from repro.algebra.translate import build_plan
    from repro.calculus.ast import Comprehension
    from repro.jit.plan import plan_fallback_constructs
    from repro.normalize.engine import normalize_with_trace

    try:
        term = db.translate(entry.example_oql)
        normalized, _ = normalize_with_trace(term)
        if not isinstance(normalized, Comprehension):
            return {}
        plan = db._optimize(build_plan(normalized, pre_normalize=True))
        return plan_fallback_constructs(plan)
    except Exception:
        return {}


def advise_jit_fallbacks(
    db: Any,
    registry: Optional[MetricsRegistry] = None,
    top_k: int = 5,
    min_share: float = 0.25,
    min_count: int = 2,
) -> list:
    """``QL501`` diagnostics for hot query classes that fall back.

    A fingerprint qualifies when it ran at least ``min_count`` times
    and accounts for at least ``min_share`` of all measured query time;
    one warning per qualifying class, naming every construct the
    compiler could not translate.
    """
    from repro.lint.diagnostics import make

    registry = registry if registry is not None else get_registry()
    total = registry.fingerprints.total_seconds()
    if total <= 0:
        return []
    diagnostics = []
    for entry in registry.fingerprints.top(top_k):
        if entry.count < min_count:
            continue
        share = entry.total_seconds / total
        if share < min_share:
            continue
        constructs = hot_fallbacks(db, entry)
        if not constructs:
            continue
        named = ", ".join(
            f"{name} x{count}" for name, count in sorted(constructs.items())
        )
        diagnostics.append(
            make(
                "QL501",
                f"query class {entry.fingerprint} is {share:.0%} of "
                f"measured runtime ({entry.count} runs, "
                f"{entry.total_seconds * 1e3:.1f}ms) but its hot loop "
                f"falls back to the interpreter for: {named}",
                None,
                hint=(
                    "rewrite the expression without these constructs, or "
                    "hoist them out of the per-row position; see docs/JIT.md"
                ),
            )
        )
    return diagnostics
