"""Plan-walk precompilation: attach closures to physical plan nodes.

:func:`compile_node` compiles one operator's embedded calculus terms
(``SelectOp.pred``, ``Join`` keys/residual, ``Unnest.path``, ``Nest``
keys/part head, ``Reduce.head``) against the statically known columns
of the relevant child and stores the resulting closures on the node
(``pred_fn``, ``left_key_fns``, ...). Plan nodes are frozen
dataclasses, so the closures live in the instance ``__dict__`` via
``object.__setattr__`` — they are derived data, not part of the node's
value (equality/hash/``dataclasses.replace`` ignore them; a rebuilt
spine recompiles lazily).

Concurrency: compilation is idempotent and every write is a single
GIL-atomic attribute store, with ``jit_ready`` written last. Racing
:mod:`repro.parallel` workers may compile the same node twice; both
produce equivalent closures and readers always observe either a fully
populated node or ``jit_ready == False``.

:func:`precompile_plan` walks a whole plan at plan-build time (the
pipeline's ``jit`` phase) and aggregates compiled/fallback counts;
:func:`plan_fallback_constructs` reports which constructs forced
interpreter fallbacks — the input to the ``QL501`` lint.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.algebra.ops import Join, Nest, PlanNode, Reduce, SelectOp, Unnest
from repro.jit.compiler import compile_term


def _compile_exprs(node: PlanNode, specs: list[tuple[str, Any, frozenset[str]]]) -> None:
    """Compile ``specs`` (attr name or None, term, bound columns) and
    attach results plus a ``jit_stats`` summary to ``node``."""
    compiled = 0
    fallback = 0
    constructs: dict[str, int] = {}
    for attr, value, bound in specs:
        if isinstance(value, tuple):
            fns = []
            for term in value:
                fns.append(_one(term, bound, constructs))
            object.__setattr__(node, attr, tuple(fn for fn, _ in fns))
            for _, clean in fns:
                compiled += clean
                fallback += 1 - clean
        else:
            fn, clean = _one(value, bound, constructs)
            object.__setattr__(node, attr, fn)
            compiled += clean
            fallback += 1 - clean
    object.__setattr__(
        node,
        "jit_stats",
        {"compiled": compiled, "fallback": fallback, "constructs": constructs},
    )
    # Written last: readers that see jit_ready see everything above.
    object.__setattr__(node, "jit_ready", True)


def _one(term, bound: frozenset[str], constructs: dict[str, int]):
    """Compile one expression; returns ``(fn, 1 if fully compiled else 0)``.

    Per-expression granularity: an expression counts as *compiled* only
    when no subterm fell back, so the telemetry ratio reflects how much
    of the hot path actually runs native.
    """
    local: list[str] = []
    fn = compile_term(term, bound, local)
    if local:
        for name in local:
            constructs[name] = constructs.get(name, 0) + 1
        return fn, 0
    return fn, 1


#: Operators carrying per-row expressions (Scan/IndexScan sources are
#: evaluated once per execution and stay interpreted).
COMPILABLE_NODES = (SelectOp, Join, Unnest, Nest, Reduce)


def compile_node(node: PlanNode) -> None:
    """Compile (idempotently) the expressions of one plan operator."""
    if not isinstance(node, COMPILABLE_NODES) or node.jit_ready:
        return
    if isinstance(node, SelectOp):
        _compile_exprs(node, [("pred_fn", node.pred, node.child.columns())])
    elif isinstance(node, Join):
        specs: list[tuple[str, Any, frozenset[str]]] = [
            ("left_key_fns", node.left_keys, node.left.columns()),
            ("right_key_fns", node.right_keys, node.right.columns()),
        ]
        if node.residual is not None:
            specs.append(("residual_fn", node.residual, node.columns()))
        _compile_exprs(node, specs)
    elif isinstance(node, Unnest):
        _compile_exprs(node, [("src_fn", node.path, node.child.columns())])
    elif isinstance(node, Nest):
        child_cols = node.child.columns()
        _compile_exprs(
            node,
            [
                ("key_fns", tuple(term for _, term in node.keys), child_cols),
                ("head_fn", node.part_head, child_cols),
            ],
        )
    elif isinstance(node, Reduce):
        _compile_exprs(node, [("head_fn", node.head, node.child.columns())])
    # Scan / IndexScan sources are evaluated once per execution, not per
    # row — compiling them would not pay for itself.


def precompile_plan(plan: PlanNode) -> dict[str, Any]:
    """Compile every operator in ``plan``; returns aggregate stats
    (``compiled``/``fallback`` expression counts and the fallback
    ``constructs`` histogram) for telemetry and ``QueryResult.jit``."""
    compiled = 0
    fallback = 0
    constructs: dict[str, int] = {}
    stack: list[PlanNode] = [plan]
    while stack:
        node = stack.pop()
        compile_node(node)
        stats = getattr(node, "jit_stats", None)
        if stats is not None:
            compiled += stats["compiled"]
            fallback += stats["fallback"]
            for name, count in stats["constructs"].items():
                constructs[name] = constructs.get(name, 0) + count
        stack.extend(node.children())
    return {"compiled": compiled, "fallback": fallback, "constructs": constructs}


def plan_fallback_constructs(plan: PlanNode) -> dict[str, int]:
    """The fallback-construct histogram for ``plan`` (compiling it if
    needed) — what ``QL501`` names when a hot query stays interpreted."""
    return precompile_plan(plan)["constructs"]


def node_fallbacks(node: PlanNode) -> Optional[dict[str, int]]:
    """Per-node fallback histogram, or None if the node has no
    compilable expressions (Scan/IndexScan) or is not yet compiled."""
    stats = getattr(node, "jit_stats", None)
    if stats is None:
        return None
    return dict(stats["constructs"])
