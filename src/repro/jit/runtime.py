"""The per-execution runtime compiled closures run against.

A compiled expression is a plain Python function ``fn(binding, rt)``
where ``binding`` is the executor's binding dict for one row and
``rt`` is a :class:`Runtime`. The closures themselves are stateless
(they capture only immutable compile-time data: constants, field
names, child closures), which is what makes them safe to store on
shared plan nodes, reuse across executions from the compiled-query
cache, and call concurrently from :mod:`repro.parallel` workers. All
per-execution state — the evaluator, the object store, the global
environment snapshot — lives here instead.
"""

from __future__ import annotations

from typing import Any

from repro.errors import EvaluationError
from repro.eval.env import Env


class Runtime:
    """Execution context handed to every compiled closure.

    ``globals`` snapshots the evaluator's global environment at
    construction time; the executor builds its runtime after prepared-
    statement parameters are bound, so ``$name`` globals resolve. The
    ``callable_for`` memo is idempotent (a name always resolves to the
    same object for one runtime), so racing writers under the GIL are
    harmless and one runtime may serve several worker threads.
    """

    __slots__ = ("ev", "store", "globals", "_callables")

    def __init__(self, evaluator: Any) -> None:
        self.ev = evaluator
        self.store = evaluator.store
        self.globals: Env = evaluator.global_env
        self._callables: dict[str, Any] = {}

    def eval_fallback(self, term: Any, binding: dict[str, Any]) -> Any:
        """Interpret ``term`` with ``binding`` layered over the globals.

        The semantics-preserving escape hatch for constructs the
        compiler does not cover. Uses the no-copy :meth:`Env.wrapping`
        fast path: binding dicts are either fresh per row or covered by
        the executor's closure-capture analysis, so aliasing them is
        safe.
        """
        env = self.globals
        if binding:
            env = Env.wrapping(binding, env)
        return self.ev.evaluate(term, env)

    def callable_for(self, name: str) -> Any:
        """Resolve a ``Call`` target with the interpreter's precedence
        (globals shadow registered functions/builtins), memoized."""
        try:
            return self._callables[name]
        except KeyError:
            pass
        if self.globals.has(name):
            fn = self.globals.lookup(name)
        elif name in self.ev.functions:
            fn = self.ev.functions[name]
        else:
            raise EvaluationError(f"unknown function {name!r}")
        self._callables[name] = fn
        return fn
