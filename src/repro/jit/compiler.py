"""Closure compilation of calculus terms.

:func:`compile_term` translates the *operator-position fragment* of
the calculus — the small, first-order residue §3 normalization leaves
in selection predicates, join keys, unnest paths, nest keys and reduce
heads — into ordinary Python closures ``fn(binding, rt) -> value``,
eliminating the per-row AST dispatch of
:meth:`repro.eval.evaluator.Evaluator._eval`.

The fragment: ``Const`` / ``Var`` / ``Proj`` / ``Deref`` / ``Index`` /
``BinOp`` / ``UnOp`` / ``If`` / ``RecordCons`` / ``TupleCons`` /
``Call`` into builtins. Everything else — ``Lambda``/``Apply``/``Let``,
comprehensions, homomorphisms, monoid constructors, method calls, user
functions and the §4.2 object effects (``New``/``Assign``/``Update``)
— compiles to a *fallback thunk* that re-enters the reference
interpreter for exactly that subterm, so a partially compilable
expression still runs its compilable shell natively.

Semantics are mirrored from the evaluator check for check: boolean
strictness and its error wording, the arithmetic type discipline
(bools are not numbers, ``str + str`` only), comparison
``TypeError`` → ``EvaluationError``, division/modulo-by-zero messages,
implicit object dereference on projection and indexing, and the
``Call`` resolution order (environment, then registered functions).
The differential tests in ``tests/test_jit_compiler.py`` and the
verify-mode executor wrapper hold the two implementations together.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional

from repro.calculus.ast import (
    BinOp,
    Call,
    Const,
    Deref,
    If,
    Index,
    Lambda,
    Proj,
    RecordCons,
    Term,
    TupleCons,
    UnOp,
    Var,
)
from repro.calculus.traversal import subterms
from repro.errors import EvaluationError
from repro.eval.builtins import DEFAULT_BUILTINS
from repro.eval.evaluator import _freeze_const
from repro.objects.store import Obj
from repro.values import OrderedSet, Record, Vector

#: The uniform signature of every compiled expression.
CompiledFn = Callable[[dict, Any], Any]


def compile_term(
    term: Term,
    bound: frozenset[str],
    fallbacks: Optional[list[str]] = None,
) -> CompiledFn:
    """Compile ``term`` to a closure over ``(binding, runtime)``.

    ``bound`` is the set of variables the consuming operator's binding
    dicts are statically known to carry (``PlanNode.columns()`` of the
    relevant child); variables outside it resolve in the runtime's
    global snapshot, preserving the interpreter's shadowing order.
    ``fallbacks``, when given, collects the construct names of every
    subterm that had to drop back to the interpreter — the raw material
    for the ``QL501`` lint and the ``repro_jit_*`` telemetry counters.
    """
    return _compile(term, bound, fallbacks)


def may_capture(term: Term) -> bool:
    """Could evaluating ``term`` allocate a closure that outlives the
    row? Conservative: any ``Lambda`` subterm (including monoid key
    functions) counts. Gates the executor's binding-dict reuse."""
    return any(isinstance(sub, Lambda) for sub in subterms(term))


# ---------------------------------------------------------------------------
# Per-construct compilers
# ---------------------------------------------------------------------------


def _fallback(term: Term, fallbacks: Optional[list[str]]) -> CompiledFn:
    if fallbacks is not None:
        fallbacks.append(type(term).__name__)

    def interpret(b: dict, rt: Any, _t: Term = term) -> Any:
        return rt.eval_fallback(_t, b)

    return interpret


def _compile(term: Term, bound: frozenset[str], fallbacks) -> CompiledFn:
    handler = _COMPILERS.get(type(term))
    if handler is None:
        return _fallback(term, fallbacks)
    return handler(term, bound, fallbacks)


def _compile_const(term: Const, bound, fallbacks) -> CompiledFn:
    # Constant freezing happens once at compile time instead of per row.
    value = _freeze_const(term.value)
    return lambda b, rt, _v=value: _v


def _compile_var(term: Var, bound, fallbacks) -> CompiledFn:
    name = term.name
    if name in bound:
        return lambda b, rt, _n=name: b[_n]
    return lambda b, rt, _n=name: rt.globals.lookup(_n)


def _compile_proj(term: Proj, bound, fallbacks) -> CompiledFn:
    base = _compile(term.base, bound, fallbacks)
    name = term.name

    def proj(b: dict, rt: Any) -> Any:
        value = base(b, rt)
        if type(value) is Record:
            return value[name]
        return rt.ev.project(value, name)

    return proj


def _compile_deref(term: Deref, bound, fallbacks) -> CompiledFn:
    target = _compile(term.target, bound, fallbacks)
    return lambda b, rt: rt.store.deref(target(b, rt))


def _index_into(rt: Any, base: Any, position: Any) -> Any:
    # Mirrors Evaluator._eval_index exactly.
    if isinstance(base, Obj):
        base = rt.store.deref(base)
    if isinstance(base, Vector):
        return base[position]
    if isinstance(base, (tuple, list, str, OrderedSet)):
        try:
            return base[position]
        except (IndexError, TypeError) as exc:
            raise EvaluationError(f"bad index {position!r}: {exc}") from None
    raise EvaluationError(f"cannot index into {type(base).__name__}")


def _compile_index(term: Index, bound, fallbacks) -> CompiledFn:
    base = _compile(term.base, bound, fallbacks)
    position = _compile(term.index, bound, fallbacks)
    return lambda b, rt: _index_into(rt, base(b, rt), position(b, rt))


def _compile_record(term: RecordCons, bound, fallbacks) -> CompiledFn:
    pairs = tuple(
        (name, _compile(value, bound, fallbacks)) for name, value in term.fields
    )

    def record(b: dict, rt: Any) -> Record:
        return Record({name: fn(b, rt) for name, fn in pairs})

    return record


def _compile_tuple(term: TupleCons, bound, fallbacks) -> CompiledFn:
    fns = tuple(_compile(item, bound, fallbacks) for item in term.items)

    def tup(b: dict, rt: Any) -> tuple:
        return tuple(fn(b, rt) for fn in fns)

    return tup


def _bool_error(value: Any, where: str) -> EvaluationError:
    # Same wording as Evaluator._require_bool.
    return EvaluationError(
        f"{where} requires a boolean, got {type(value).__name__}: {value!r}"
    )


def _compile_if(term: If, bound, fallbacks) -> CompiledFn:
    cond = _compile(term.cond, bound, fallbacks)
    then = _compile(term.then_branch, bound, fallbacks)
    other = _compile(term.else_branch, bound, fallbacks)

    def branch(b: dict, rt: Any) -> Any:
        test = cond(b, rt)
        if test is True:
            return then(b, rt)
        if test is False:
            return other(b, rt)
        raise _bool_error(test, "if")

    return branch


def _compile_unop(term: UnOp, bound, fallbacks) -> CompiledFn:
    operand = _compile(term.operand, bound, fallbacks)
    if term.op == "not":

        def negate(b: dict, rt: Any) -> bool:
            value = operand(b, rt)
            if value is True:
                return False
            if value is False:
                return True
            raise _bool_error(value, "not")

        return negate
    if term.op == "-":

        def neg(b: dict, rt: Any) -> Any:
            value = operand(b, rt)
            if type(value) is int or type(value) is float:
                return -value
            raise EvaluationError(f"negation of non-number {value!r}")

        return neg
    # Unknown unary operator: the interpreter raises the exact error.
    return _fallback(term, fallbacks)


_COMPARE = {"<": operator.lt, "<=": operator.le, ">": operator.gt, ">=": operator.ge}


def _compile_binop(term: BinOp, bound, fallbacks) -> CompiledFn:
    op = term.op
    left = _compile(term.left, bound, fallbacks)
    right = _compile(term.right, bound, fallbacks)

    if op in ("and", "or"):
        short = op == "or"  # the value that short-circuits

        def logic(b: dict, rt: Any) -> bool:
            lv = left(b, rt)
            if lv is not True and lv is not False:
                raise _bool_error(lv, op)
            if lv is short:
                return short
            rv = right(b, rt)
            if rv is True or rv is False:
                return rv
            raise _bool_error(rv, op)

        return logic
    if op == "=":
        return lambda b, rt: left(b, rt) == right(b, rt)
    if op == "!=":
        return lambda b, rt: left(b, rt) != right(b, rt)
    if op in _COMPARE:
        py = _COMPARE[op]

        def compare(b: dict, rt: Any) -> bool:
            lv = left(b, rt)
            rv = right(b, rt)
            try:
                return py(lv, rv)
            except TypeError:
                raise EvaluationError(
                    f"cannot compare {type(lv).__name__} {op} {type(rv).__name__}"
                ) from None

        return compare
    if op in ("+", "-", "*", "/", "div", "mod"):
        return _compile_arith(op, left, right)
    if op in ("in", "union", "intersect", "except"):
        return lambda b, rt: rt.ev.apply_binop(op, left(b, rt), right(b, rt))
    # Unknown operator: the interpreter raises the exact error.
    return _fallback(term, fallbacks)


def _compile_arith(op: str, left: CompiledFn, right: CompiledFn) -> CompiledFn:
    # Exact-int fast paths (``type is int`` excludes bool, matching the
    # interpreter's number discipline); everything else — floats, string
    # concatenation, type errors, division by zero — routes through
    # Evaluator._arith so the semantics and error wording stay shared.
    if op == "+":

        def add(b: dict, rt: Any) -> Any:
            lv = left(b, rt)
            rv = right(b, rt)
            if type(lv) is int and type(rv) is int:
                return lv + rv
            return rt.ev._arith("+", lv, rv)

        return add
    if op == "-":

        def sub(b: dict, rt: Any) -> Any:
            lv = left(b, rt)
            rv = right(b, rt)
            if type(lv) is int and type(rv) is int:
                return lv - rv
            return rt.ev._arith("-", lv, rv)

        return sub
    if op == "*":

        def mul(b: dict, rt: Any) -> Any:
            lv = left(b, rt)
            rv = right(b, rt)
            if type(lv) is int and type(rv) is int:
                return lv * rv
            return rt.ev._arith("*", lv, rv)

        return mul

    def divide(b: dict, rt: Any) -> Any:
        return rt.ev._arith(op, left(b, rt), right(b, rt))

    return divide


def _compile_call(term: Call, bound, fallbacks) -> CompiledFn:
    name = term.name
    # Only straight calls into known builtins compile; a name bound by
    # the plan (a closure-valued variable) or a user-registered function
    # stays interpreted. Resolution still happens through the runtime so
    # a global that shadows a builtin name wins, as in the interpreter.
    if name in bound or name not in DEFAULT_BUILTINS:
        return _fallback(term, fallbacks)
    arg_fns = tuple(_compile(arg, bound, fallbacks) for arg in term.args)

    def call(b: dict, rt: Any) -> Any:
        fn = rt.callable_for(name)
        return rt.ev.apply_callable(fn, *[f(b, rt) for f in arg_fns])

    return call


_COMPILERS: dict[type, Callable[..., CompiledFn]] = {
    Const: _compile_const,
    Var: _compile_var,
    Proj: _compile_proj,
    Deref: _compile_deref,
    Index: _compile_index,
    RecordCons: _compile_record,
    TupleCons: _compile_tuple,
    BinOp: _compile_binop,
    UnOp: _compile_unop,
    If: _compile_if,
    Call: _compile_call,
}
