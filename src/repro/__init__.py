"""repro — the monoid comprehension calculus of Fegaras & Maier (SIGMOD 1995).

A full reproduction of *Towards an Effective Calculus for Object Query
Languages*: the monoid framework (Table 1), monoid comprehensions and
homomorphisms with the static C/I well-formedness restriction, an OQL
front end with the section 3 translation, the Table 3 normalizer, a
logical/physical algebra with pipelined execution, vectors and arrays
as monoids (section 4.1), and object identity/updates (section 4.2).

Quickstart::

    from repro import Database, travel_schema, make_travel_agency

    db = Database(travel_schema())
    db.load_extents(make_travel_agency(seed=1))
    names = db.run("select distinct h.name from c in Cities, "
                   "h in c.hotels where c.name = 'Portland'")

See ``examples/`` for tours of every subsystem.
"""

from repro.calculus import (
    Comprehension,
    parse_calculus,
    Term,
    bind,
    comp,
    const,
    filt,
    gen,
    pretty,
    pretty_block,
    var,
)
from repro.db import (
    Database,
    QueryResult,
    company_schema,
    demo_company_database,
    demo_travel_database,
    make_company,
    make_travel_agency,
    travel_schema,
)
from repro.errors import LintError, ReproError
from repro.eval import Evaluator, evaluate
from repro.lint import Diagnostic, Linter, lint_oql
from repro.monoids import (
    BAG,
    LIST,
    OSET,
    SET,
    STRING,
    SUM,
    check_hom_well_formed,
    hom,
    table1,
)
from repro.normalize import normalize, normalize_with_trace
from repro.oql import parse, translate_oql
from repro.span import Span
from repro.types import Schema, TypeChecker
from repro.values import Bag, OrderedSet, Record, Vector, to_python

__version__ = "1.0.0"

__all__ = [
    "BAG",
    "Bag",
    "Comprehension",
    "Database",
    "Diagnostic",
    "Evaluator",
    "LIST",
    "LintError",
    "Linter",
    "OSET",
    "OrderedSet",
    "QueryResult",
    "Record",
    "ReproError",
    "SET",
    "STRING",
    "SUM",
    "Schema",
    "Span",
    "Term",
    "TypeChecker",
    "Vector",
    "bind",
    "check_hom_well_formed",
    "comp",
    "company_schema",
    "const",
    "demo_company_database",
    "demo_travel_database",
    "evaluate",
    "filt",
    "gen",
    "hom",
    "lint_oql",
    "make_company",
    "make_travel_agency",
    "normalize",
    "normalize_with_trace",
    "parse",
    "parse_calculus",
    "pretty",
    "pretty_block",
    "table1",
    "to_python",
    "translate_oql",
    "travel_schema",
    "var",
]
