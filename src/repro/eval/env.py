"""Evaluation environments: immutable chained scopes."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import UnboundVariableError


class Env:
    """An immutable mapping of variable names to runtime values.

    ``bind`` extends the environment without mutating it, so generator
    iteration can reuse the parent scope cheaply:

    >>> base = Env({"x": 1})
    >>> child = base.bind("y", 2)
    >>> child.lookup("x"), child.lookup("y")
    (1, 2)
    >>> base.has("y")
    False
    """

    __slots__ = ("_bindings", "_parent")

    def __init__(self, bindings: dict[str, Any] | None = None, parent: "Env | None" = None) -> None:
        self._bindings = dict(bindings or {})
        self._parent = parent

    @classmethod
    def wrapping(cls, bindings: dict[str, Any], parent: "Env | None") -> "Env":
        """A child environment *aliasing* ``bindings`` without copying.

        The constructor copies its dict so environments stay immutable
        even if the caller mutates theirs afterwards. On the per-row
        execution path that copy is pure overhead: the executor either
        owns a fresh dict per row or has proven (closure-capture
        analysis) that nothing retains the environment past the row.
        Callers must uphold that contract — the returned environment
        reflects later mutations of ``bindings``.
        """
        env = cls.__new__(cls)
        env._bindings = bindings
        env._parent = parent
        return env

    def bind(self, name: str, value: Any) -> "Env":
        """A child environment with one extra binding."""
        return Env({name: value}, parent=self)

    def bind_many(self, bindings: dict[str, Any]) -> "Env":
        """A child environment with several extra bindings."""
        if not bindings:
            return self
        return Env(bindings, parent=self)

    def lookup(self, name: str) -> Any:
        env: Env | None = self
        while env is not None:
            if name in env._bindings:
                return env._bindings[name]
            env = env._parent
        raise UnboundVariableError(name, candidates=self.names())

    def has(self, name: str) -> bool:
        env: Env | None = self
        while env is not None:
            if name in env._bindings:
                return True
            env = env._parent
        return False

    def names(self) -> Iterator[str]:
        """All visible names, innermost scopes first."""
        seen: set[str] = set()
        env: Env | None = self
        while env is not None:
            for name in env._bindings:
                if name not in seen:
                    seen.add(name)
                    yield name
            env = env._parent
