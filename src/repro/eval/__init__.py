"""Reference evaluator for the monoid comprehension calculus."""

from repro.eval.builtins import DEFAULT_BUILTINS, runtime_monoid_of
from repro.eval.env import Env
from repro.eval.evaluator import Closure, Evaluator, evaluate, merge_into

__all__ = [
    "DEFAULT_BUILTINS",
    "Closure",
    "Env",
    "Evaluator",
    "evaluate",
    "merge_into",
    "runtime_monoid_of",
]
