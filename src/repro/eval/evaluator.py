"""The reference evaluator: direct denotational semantics of the calculus.

This module gives every calculus term a meaning by straightforward
recursive interpretation. It is deliberately simple — no plans, no
optimization — because it serves as the *ground truth* against which
the normalizer and the algebra engine are verified: every rewrite rule
and every physical plan must produce results equal to this evaluator's.

Comprehension semantics follows the paper's reduction to monoid
homomorphisms:

    M{ e | v <- u, r }  =  hom[N -> M](\\v. M{ e | r })(u)
    M{ e | pred, r }    =  if pred then M{ e | r } else zero(M)
    M{ e | v == u, r }  =  M{ e | r }[u/v]
    M{ e | }            =  unit(M)(e)

with an O(n) accumulator in place of repeated merges, and qualifiers
evaluated left-to-right in deterministic collection order — which also
fixes the heap-threading order for the section 4.2 object operations.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.errors import EvaluationError
from repro.eval.builtins import DEFAULT_BUILTINS, runtime_monoid_of
from repro.eval.env import Env
from repro.monoids import (
    CollectionMonoid,
    Monoid,
    VectorMonoid,
    get_monoid,
    sorted_bag_monoid,
    sorted_monoid,
)
from repro.objects.store import Obj, ObjectStore
from repro.values import Bag, OrderedSet, Record, Vector


class Closure:
    """A lambda value: parameter, body and captured environment."""

    __slots__ = ("param", "body", "env")

    def __init__(self, param: str, body: Term, env: Env) -> None:
        self.param = param
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return f"<closure \\{self.param}. {self.body}>"


class Evaluator:
    """Evaluates calculus terms against bindings, builtins and a heap.

    >>> from repro.calculus import comp, gen, var, const, tup
    >>> ev = Evaluator()
    >>> term = comp("set", tup(var("a"), var("b")),
    ...             [gen("a", const((1, 2, 3))), gen("b", const(Bag((4, 5))))])
    >>> sorted(ev.evaluate(term))
    [(1, 4), (1, 5), (2, 4), (2, 5), (3, 4), (3, 5)]
    """

    def __init__(
        self,
        bindings: dict[str, Any] | None = None,
        functions: dict[str, Callable[..., Any]] | None = None,
        methods: dict[str, Callable[..., Any]] | None = None,
        store: ObjectStore | None = None,
    ) -> None:
        self.global_env = Env(dict(bindings or {}))
        self.functions = dict(DEFAULT_BUILTINS)
        if functions:
            self.functions.update(functions)
        self.methods = dict(methods or {})
        self.store = store if store is not None else ObjectStore()

    # -- public API ---------------------------------------------------------

    def evaluate(self, term: Term, env: Env | None = None) -> Any:
        """Evaluate ``term``; free variables resolve in ``env`` or globals."""
        return self._eval(term, env if env is not None else self.global_env)

    def bind_global(self, name: str, value: Any) -> None:
        """Add a persistent global binding (e.g. a database extent)."""
        self.global_env = self.global_env.bind(name, value)

    # -- dispatcher -----------------------------------------------------------

    def _eval(self, term: Term, env: Env) -> Any:
        method = _DISPATCH.get(type(term))
        if method is None:
            raise EvaluationError(f"cannot evaluate {type(term).__name__}")
        return method(self, term, env)

    # -- leaves ----------------------------------------------------------------

    def _eval_const(self, term: Const, env: Env) -> Any:
        return _freeze_const(term.value)

    def _eval_var(self, term: Var, env: Env) -> Any:
        return env.lookup(term.name)

    # -- functions ---------------------------------------------------------------

    def _eval_lambda(self, term: Lambda, env: Env) -> Closure:
        return Closure(term.param, term.body, env)

    def _eval_apply(self, term: Apply, env: Env) -> Any:
        fn = self._eval(term.fn, env)
        arg = self._eval(term.arg, env)
        return self.apply_callable(fn, arg)

    def apply_callable(self, fn: Any, *args: Any) -> Any:
        """Apply a closure or a Python callable to arguments."""
        if isinstance(fn, Closure):
            result: Any = fn
            for arg in args:
                if not isinstance(result, Closure):
                    raise EvaluationError("over-application of a closure")
                result = self._eval(result.body, result.env.bind(result.param, arg))
            return result
        if callable(fn):
            return fn(*args)
        raise EvaluationError(f"value is not applicable: {fn!r}")

    def _eval_let(self, term: Let, env: Env) -> Any:
        value = self._eval(term.value, env)
        return self._eval(term.body, env.bind(term.var, value))

    # -- data constructors ----------------------------------------------------------

    def _eval_record(self, term: RecordCons, env: Env) -> Record:
        return Record({name: self._eval(value, env) for name, value in term.fields})

    def _eval_tuple(self, term: TupleCons, env: Env) -> tuple:
        return tuple(self._eval(item, env) for item in term.items)

    def _eval_proj(self, term: Proj, env: Env) -> Any:
        base = self._eval(term.base, env)
        return self.project(base, term.name)

    def project(self, base: Any, name: str) -> Any:
        """Field access with implicit dereference of objects (OQL paths)."""
        if isinstance(base, Obj):
            base = self.store.deref(base)
        if isinstance(base, Record):
            return base[name]
        raise EvaluationError(
            f"cannot project field {name!r} from {type(base).__name__}"
        )

    def _eval_index(self, term: Index, env: Env) -> Any:
        base = self._eval(term.base, env)
        position = self._eval(term.index, env)
        if isinstance(base, Obj):
            base = self.store.deref(base)
        if isinstance(base, Vector):
            return base[position]
        if isinstance(base, (tuple, list, str, OrderedSet)):
            try:
                return base[position]
            except (IndexError, TypeError) as exc:
                raise EvaluationError(f"bad index {position!r}: {exc}") from None
        raise EvaluationError(f"cannot index into {type(base).__name__}")

    # -- operators -----------------------------------------------------------------

    def _eval_binop(self, term: BinOp, env: Env) -> Any:
        op = term.op
        if op == "and":
            left = self._eval(term.left, env)
            self._require_bool(left, op)
            if not left:
                return False
            right = self._eval(term.right, env)
            self._require_bool(right, op)
            return right
        if op == "or":
            left = self._eval(term.left, env)
            self._require_bool(left, op)
            if left:
                return True
            right = self._eval(term.right, env)
            self._require_bool(right, op)
            return right

        left = self._eval(term.left, env)
        right = self._eval(term.right, env)
        return self.apply_binop(op, left, right)

    def apply_binop(self, op: str, left: Any, right: Any) -> Any:
        """Strict binary operators on already-evaluated operands."""
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op in ("<", "<=", ">", ">="):
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError:
                raise EvaluationError(
                    f"cannot compare {type(left).__name__} {op} {type(right).__name__}"
                ) from None
        if op in ("+", "-", "*", "/", "div", "mod"):
            return self._arith(op, left, right)
        if op == "in":
            monoid = runtime_monoid_of(right)
            if isinstance(monoid, VectorMonoid):
                return any(value == left for _, value in monoid.iterate(right))
            return monoid.contains(right, left)
        if op in ("union", "intersect", "except"):
            return self._set_op(op, left, right)
        raise EvaluationError(f"unknown operator {op!r}")

    def _arith(self, op: str, left: Any, right: Any) -> Any:
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if not isinstance(left, (int, float)) or isinstance(left, bool):
            raise EvaluationError(f"arithmetic {op!r} on non-number {left!r}")
        if not isinstance(right, (int, float)) or isinstance(right, bool):
            raise EvaluationError(f"arithmetic {op!r} on non-number {right!r}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return left / right
        if op == "div":
            if right == 0:
                raise EvaluationError("division by zero")
            return left // right
        if right == 0:
            raise EvaluationError("modulo by zero")
        return left % right

    def _set_op(self, op: str, left: Any, right: Any) -> Any:
        if isinstance(left, frozenset) and isinstance(right, frozenset):
            if op == "union":
                return left | right
            if op == "intersect":
                return left & right
            return left - right
        if isinstance(left, Bag) and isinstance(right, Bag):
            if op == "union":
                return left.union(right)
            if op == "intersect":
                return left.intersection(right)
            return left.difference(right)
        if op == "union":
            monoid = runtime_monoid_of(left)
            return monoid.merge(left, right)
        raise EvaluationError(
            f"{op} requires two sets or two bags, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )

    def _eval_unop(self, term: UnOp, env: Env) -> Any:
        value = self._eval(term.operand, env)
        if term.op == "not":
            self._require_bool(value, "not")
            return not value
        if term.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise EvaluationError(f"negation of non-number {value!r}")
            return -value
        raise EvaluationError(f"unknown unary operator {term.op!r}")

    def _eval_if(self, term: If, env: Env) -> Any:
        cond = self._eval(term.cond, env)
        self._require_bool(cond, "if")
        branch = term.then_branch if cond else term.else_branch
        return self._eval(branch, env)

    # -- monoid primitives ---------------------------------------------------------

    def resolve_monoid(self, ref: MonoidRef, env: Env) -> Monoid:
        """Resolve a syntactic monoid reference to a live monoid."""
        if ref.name in ("sorted", "sortedbag"):
            if ref.key is None:
                raise EvaluationError(f"{ref.name} monoid requires a key function")
            key_value = self._eval(ref.key, env)

            def key_fn(value: Any, _key=key_value) -> Any:
                return self.apply_callable(_key, value)

            factory = sorted_monoid if ref.name == "sorted" else sorted_bag_monoid
            return factory(key_fn, key_name=str(ref.key))
        if ref.name == "vec":
            if ref.element is None or ref.size is None:
                raise EvaluationError("vector monoid requires element monoid and size")
            element = self.resolve_monoid(ref.element, env)
            size = self._eval(ref.size, env)
            if not isinstance(size, int) or isinstance(size, bool) or size < 0:
                raise EvaluationError(f"vector size must be a non-negative int, got {size!r}")
            return VectorMonoid(element, size)
        return get_monoid(ref.name)

    def _eval_empty(self, term: Empty, env: Env) -> Any:
        return self.resolve_monoid(term.monoid, env).zero()

    def _eval_singleton(self, term: Singleton, env: Env) -> Any:
        monoid = self.resolve_monoid(term.monoid, env)
        element = self._eval(term.element, env)
        if isinstance(monoid, VectorMonoid):
            if term.index is None:
                raise EvaluationError("vector unit requires an index")
            return monoid.unit(element, self._eval(term.index, env))
        return monoid.unit(element)

    def _eval_merge(self, term: Merge, env: Env) -> Any:
        monoid = self.resolve_monoid(term.monoid, env)
        left = self._eval(term.left, env)
        right = self._eval(term.right, env)
        return monoid.merge(left, right)

    # -- comprehensions ---------------------------------------------------------------

    def _eval_comprehension(self, term: Comprehension, env: Env) -> Any:
        monoid = self.resolve_monoid(term.monoid, env)
        head = term.head
        if isinstance(monoid, CollectionMonoid):
            acc = monoid.accumulator()
            if isinstance(monoid, VectorMonoid):
                def emit(scope: Env) -> None:
                    pair = self._eval(head, scope)
                    if not isinstance(pair, tuple) or len(pair) != 2:
                        raise EvaluationError(
                            "a vector comprehension head must be a (value, index) pair"
                        )
                    acc.add(pair)
            else:
                def emit(scope: Env) -> None:
                    acc.add(self._eval(head, scope))

            self._run_qualifiers(term.qualifiers, env, emit)
            return acc.finish()

        # Primitive monoid: fold merges over head values.
        cell = [monoid.zero()]

        def emit_primitive(scope: Env) -> None:
            cell[0] = monoid.merge(cell[0], self._eval(head, scope))

        self._run_qualifiers(term.qualifiers, env, emit_primitive)
        return cell[0]

    def _run_qualifiers(
        self,
        qualifiers: Sequence[Qualifier],
        env: Env,
        emit: Callable[[Env], None],
    ) -> None:
        """Depth-first qualifier interpretation, left to right."""
        if not qualifiers:
            emit(env)
            return
        qual, rest = qualifiers[0], qualifiers[1:]
        if isinstance(qual, Generator):
            source = self._eval(qual.source, env)
            if isinstance(source, Obj):
                source = self.store.deref(source)
            monoid = runtime_monoid_of(source)
            if qual.index_var is None:
                if isinstance(monoid, VectorMonoid):
                    for _, value in monoid.iterate(source):
                        self._run_qualifiers(rest, env.bind(qual.var, value), emit)
                else:
                    for value in monoid.iterate(source):
                        self._run_qualifiers(rest, env.bind(qual.var, value), emit)
            else:
                for position, value in self._indexed_iterate(monoid, source):
                    scope = env.bind_many({qual.var: value, qual.index_var: position})
                    self._run_qualifiers(rest, scope, emit)
        elif isinstance(qual, Bind):
            value = self._eval(qual.value, env)
            self._run_qualifiers(rest, env.bind(qual.var, value), emit)
        else:  # Filter
            value = self._eval(qual.pred, env)
            self._require_bool(value, "qualifier predicate")
            if value:
                self._run_qualifiers(rest, env, emit)

    def _indexed_iterate(self, monoid: CollectionMonoid, source: Any):
        """(index, element) pairs for the ``v[i] <- x`` generator form."""
        if isinstance(monoid, VectorMonoid):
            yield from monoid.iterate(source)
            return
        if isinstance(source, (tuple, list, str, OrderedSet)):
            for position, value in enumerate(monoid.iterate(source)):
                yield position, value
            return
        raise EvaluationError(
            "indexed generators require an ordered collection "
            f"(vector, list, oset), got {type(source).__name__}"
        )

    # -- homomorphism -------------------------------------------------------------------

    def _eval_hom(self, term: Hom, env: Env) -> Any:
        source = self.resolve_monoid(term.source, env)
        target = self.resolve_monoid(term.target, env)
        if not isinstance(source, CollectionMonoid):
            raise EvaluationError(f"hom source {source.name} must be a collection monoid")
        from repro.monoids import check_hom_well_formed

        check_hom_well_formed(source, target)
        collection = self._eval(term.arg, env)
        result = target.zero()
        iterator = source.iterate(collection)
        if isinstance(source, VectorMonoid):
            iterator = (value for _, value in iterator)
        for element in iterator:
            part = self._eval(term.body, env.bind(term.var, element))
            result = target.merge(result, part)
        return result

    # -- calls ----------------------------------------------------------------------------

    def _eval_call(self, term: Call, env: Env) -> Any:
        if env.has(term.name):
            fn = env.lookup(term.name)
        elif term.name in self.functions:
            fn = self.functions[term.name]
        else:
            raise EvaluationError(f"unknown function {term.name!r}")
        args = [self._eval(arg, env) for arg in term.args]
        return self.apply_callable(fn, *args)

    def _eval_method(self, term: MethodCall, env: Env) -> Any:
        base = self._eval(term.base, env)
        args = [self._eval(arg, env) for arg in term.args]
        if term.name in self.methods:
            return self.methods[term.name](base, *args)
        # Fall back: a record field holding a closure acts as a method.
        target = base
        if isinstance(target, Obj):
            target = self.store.deref(target)
        if isinstance(target, Record) and term.name in target:
            fn = target[term.name]
            return self.apply_callable(fn, *args)
        raise EvaluationError(f"unknown method {term.name!r}")

    # -- objects (section 4.2) ---------------------------------------------------------------

    def _eval_new(self, term: New, env: Env) -> Obj:
        return self.store.new(self._eval(term.state, env))

    def _eval_deref(self, term: Deref, env: Env) -> Any:
        return self.store.deref(self._eval(term.target, env))

    def _eval_assign(self, term: Assign, env: Env) -> bool:
        target = self._eval(term.target, env)
        value = self._eval(term.value, env)
        return self.store.assign(target, value)

    def _eval_update(self, term: Update, env: Env) -> bool:
        target = self._eval(term.base, env)
        value = self._eval(term.value, env)
        if not isinstance(target, Obj):
            raise EvaluationError(
                f"update target must be an object, got {type(target).__name__}"
            )
        state = self.store.deref(target)
        if not isinstance(state, Record):
            raise EvaluationError("update requires an object with record state")
        if term.op == ":=":
            new_state = state.with_field(term.field_name, value)
        elif term.op == "+=":
            current = state[term.field_name]
            new_state = state.with_field(
                term.field_name, merge_into(current, value)
            )
        else:
            raise EvaluationError(f"unknown update operator {term.op!r}")
        return self.store.assign(target, new_state)

    # -- misc -------------------------------------------------------------------------------------

    @staticmethod
    def _require_bool(value: Any, where: str) -> None:
        if not isinstance(value, bool):
            raise EvaluationError(
                f"{where} requires a boolean, got {type(value).__name__}: {value!r}"
            )


def merge_into(current: Any, value: Any) -> Any:
    """``+=`` semantics: numeric add, or merge into a collection.

    A non-collection right-hand side is inserted as one element (the
    paper's ``c.hotels += <name=..., ...>`` adds one hotel to a set).
    """
    if isinstance(current, (int, float)) and not isinstance(current, bool):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise EvaluationError(f"+= of non-number {value!r} onto number")
        return current + value
    try:
        monoid = runtime_monoid_of(current)
    except EvaluationError:
        raise EvaluationError(
            f"+= target must be a number or collection, got {type(current).__name__}"
        ) from None
    if type(value) is type(current):
        return monoid.merge(current, value)
    acc = monoid.accumulator()
    for element in monoid.iterate(current):
        acc.add(element)
    acc.add(value)
    return acc.finish()


def _freeze_const(value: Any) -> Any:
    """Deep-convert Python literals into library carrier values."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_const(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze_const(v) for v in value)
    if isinstance(value, dict):
        return Record({k: _freeze_const(v) for k, v in value.items()})
    return value


_DISPATCH = {
    Const: Evaluator._eval_const,
    Var: Evaluator._eval_var,
    Lambda: Evaluator._eval_lambda,
    Apply: Evaluator._eval_apply,
    Let: Evaluator._eval_let,
    RecordCons: Evaluator._eval_record,
    TupleCons: Evaluator._eval_tuple,
    Proj: Evaluator._eval_proj,
    Index: Evaluator._eval_index,
    BinOp: Evaluator._eval_binop,
    UnOp: Evaluator._eval_unop,
    If: Evaluator._eval_if,
    Empty: Evaluator._eval_empty,
    Singleton: Evaluator._eval_singleton,
    Merge: Evaluator._eval_merge,
    Comprehension: Evaluator._eval_comprehension,
    Hom: Evaluator._eval_hom,
    Call: Evaluator._eval_call,
    MethodCall: Evaluator._eval_method,
    New: Evaluator._eval_new,
    Deref: Evaluator._eval_deref,
    Assign: Evaluator._eval_assign,
    Update: Evaluator._eval_update,
}


def evaluate(term: Term, bindings: dict[str, Any] | None = None, **kwargs: Any) -> Any:
    """One-shot evaluation convenience.

    >>> from repro.calculus import comp, gen, var, const
    >>> evaluate(comp("sum", var("a"), [gen("a", const((1, 2, 3)))]))
    6
    """
    return Evaluator(bindings, **kwargs).evaluate(term)
