"""Builtin functions available to calculus terms and OQL queries.

These cover the OQL operations that are functions rather than syntax:
``count``/``length``, ``element`` (the unique member of a singleton
collection), ``flatten``, conversions between collection types, and a
few numeric helpers used by the scientific examples.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

from repro.errors import EvaluationError
from repro.monoids import BAG, LIST, OSET, SET, convert
from repro.monoids.base import CollectionMonoid
from repro.values import Bag, OrderedSet, Vector


def runtime_monoid_of(value: Any) -> CollectionMonoid:
    """Infer the collection monoid a runtime value belongs to.

    Generators iterate whatever collection their source expression
    produced; the carrier type determines the monoid.
    """
    from repro.monoids import STRING, VectorMonoid
    from repro.monoids.primitive import SUM

    if isinstance(value, (tuple, list)):
        return LIST
    if isinstance(value, frozenset):
        return SET
    if isinstance(value, set):
        return SET
    if isinstance(value, Bag):
        return BAG
    if isinstance(value, OrderedSet):
        return OSET
    if isinstance(value, str):
        return STRING
    if isinstance(value, Vector):
        # Element monoid is unknown at runtime; SUM's zero matches the
        # default fill for numeric vectors, and iteration does not need it.
        return VectorMonoid(SUM, len(value))
    raise EvaluationError(
        f"value of type {type(value).__name__} is not a collection: {value!r}"
    )


def _as_iterable(value: Any) -> list:
    monoid = runtime_monoid_of(value)
    return list(monoid.iterate(value))


def builtin_count(value: Any) -> int:
    """OQL ``count(e)`` — number of elements, with multiplicity."""
    monoid = runtime_monoid_of(value)
    return monoid.length(value)


def builtin_element(value: Any) -> Any:
    """OQL ``element(e)`` — the sole member of a singleton collection."""
    items = _as_iterable(value)
    if isinstance(value, Vector):
        items = [v for _, v in items]
    if len(items) != 1:
        raise EvaluationError(
            f"element() requires a singleton collection, got {len(items)} elements"
        )
    return items[0]


def builtin_flatten(value: Any) -> Any:
    """OQL ``flatten(e)`` — one-level flattening of nested collections.

    The result carrier follows the outer collection's monoid: flattening
    a set of sets yields a set; a bag of lists yields a bag, etc.
    """
    outer = runtime_monoid_of(value)
    acc = outer.accumulator()
    for inner in outer.iterate(value):
        inner_monoid = runtime_monoid_of(inner)
        for element in inner_monoid.iterate(inner):
            acc.add(element)
    return acc.finish()


def builtin_to_set(value: Any) -> frozenset:
    """``distinct``/``listtoset`` — convert any collection to a set."""
    return convert(runtime_monoid_of(value), SET, value, check=False)


def builtin_to_bag(value: Any) -> Bag:
    """Convert to a bag (keeps multiplicity where the source has it)."""
    return convert(runtime_monoid_of(value), BAG, value, check=False)


def builtin_to_list(value: Any) -> tuple:
    """Convert to a list, in the source's deterministic order."""
    return convert(runtime_monoid_of(value), LIST, value, check=False)


def builtin_first(value: Any) -> Any:
    """First element of an ordered collection."""
    items = _as_iterable(value)
    if not items:
        raise EvaluationError("first() of an empty collection")
    return items[0]


def builtin_last(value: Any) -> Any:
    """Last element of an ordered collection."""
    items = _as_iterable(value)
    if not items:
        raise EvaluationError("last() of an empty collection")
    return items[-1]


def builtin_range(*args: int) -> tuple:
    """``range(n)`` or ``range(lo, hi)`` — a list of integers."""
    return tuple(range(*args))


def builtin_abs(value: Any) -> Any:
    return abs(value)


def builtin_sqrt(value: Any) -> float:
    return math.sqrt(value)


def builtin_like(value: Any, pattern: Any) -> bool:
    """OQL ``s like p`` — SQL-style patterns: ``%`` any run, ``_`` one char.

    >>> builtin_like("Portland", "Port%")
    True
    >>> builtin_like("Portland", "P_rt%")
    True
    >>> builtin_like("Salem", "Port%")
    False
    """
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise EvaluationError("like requires string operands")
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch) for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def builtin_avg(value: Any) -> float:
    """OQL ``avg(e)``."""
    items = _as_iterable(value)
    if not items:
        raise EvaluationError("avg() of an empty collection")
    return sum(items) / len(items)


DEFAULT_BUILTINS: dict[str, Callable[..., Any]] = {
    "count": builtin_count,
    "length": builtin_count,
    "element": builtin_element,
    "flatten": builtin_flatten,
    "distinct": builtin_to_set,
    "to_set": builtin_to_set,
    "to_bag": builtin_to_bag,
    "to_list": builtin_to_list,
    "first": builtin_first,
    "last": builtin_last,
    "range": builtin_range,
    "abs": builtin_abs,
    "sqrt": builtin_sqrt,
    "avg": builtin_avg,
    "like": builtin_like,
}
