"""Exception hierarchy for the monoid calculus library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Each pipeline stage has its own
subclass, which keeps failures attributable: a parse failure is a
:class:`OQLSyntaxError`, a C/I violation is a :class:`WellFormednessError`,
and so on.
"""

from __future__ import annotations

from difflib import get_close_matches
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.span import Span


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MonoidError(ReproError):
    """A monoid was constructed or used inconsistently."""


class UnknownMonoidError(MonoidError):
    """A monoid name was looked up that is not in the registry."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        self.known = known or []
        hint = f" (known: {', '.join(sorted(self.known))})" if self.known else ""
        super().__init__(f"unknown monoid {name!r}{hint}")


class WellFormednessError(MonoidError):
    """A homomorphism or comprehension violates the C/I restriction.

    The paper's central static check: ``hom[N -> M]`` is well formed only
    when ``props(N)`` is a subset of ``props(M)``. For example a
    homomorphism from ``set`` (commutative and idempotent) to ``sum``
    (commutative but not idempotent) is rejected, which is what prevents
    the classic ``1 = hom[set->sum](\\x.1) {a}`` inconsistency.
    """


class CalculusError(ReproError):
    """A calculus term is malformed (arity, unbound variable, bad field)."""


class UnboundVariableError(CalculusError):
    """A variable occurs free where a binding was required.

    When the raiser supplies the names that *are* in scope, the message
    carries a did-you-mean hint (mirroring :class:`UnknownMonoidError`):

    >>> raise UnboundVariableError("Citeis", candidates=["Cities", "Hotels"])
    Traceback (most recent call last):
    ...
    repro.errors.UnboundVariableError: unbound variable 'Citeis' (did you mean 'Cities'?)
    """

    def __init__(self, name: str, candidates: Optional[Iterable[str]] = None) -> None:
        self.name = name
        self.candidates = sorted(set(candidates or ()))
        self.suggestion = did_you_mean(name, self.candidates)
        hint = f" (did you mean {self.suggestion!r}?)" if self.suggestion else ""
        super().__init__(f"unbound variable {name!r}{hint}")


def did_you_mean(name: str, candidates: Sequence[str]) -> Optional[str]:
    """The closest in-scope candidate to ``name``, if any is close."""
    matches = get_close_matches(name, candidates, n=1, cutoff=0.6)
    return matches[0] if matches else None


class EvaluationError(ReproError):
    """The reference evaluator hit a dynamic error (bad operand, etc.)."""


class TypingError(ReproError):
    """Static type inference or checking failed."""


class SchemaError(ReproError):
    """A schema declaration is inconsistent (duplicate class, bad extent)."""


class OQLError(ReproError):
    """Base class for OQL front-end failures."""


class OQLSyntaxError(OQLError):
    """The OQL text could not be tokenized or parsed.

    Always carries a source position: raise-sites pass either a
    :class:`~repro.span.Span` or a line/column pair (positions default
    to ``1, 1`` rather than the old ``0`` sentinel, so the location
    suffix is never silently suppressed).
    """

    def __init__(
        self,
        message: str,
        line: int = 1,
        column: int = 1,
        span: "Optional[Span]" = None,
    ) -> None:
        if span is None:
            from repro.span import point_span

            span = point_span(max(line, 1), max(column, 1))
        self.span = span
        self.line = span.line
        self.column = span.column
        super().__init__(f"{message} at {span}")


class TranslationError(OQLError):
    """An OQL construct could not be mapped into the calculus."""


class NormalizationError(ReproError):
    """The rewrite engine detected an internal inconsistency."""


class VerificationError(ReproError):
    """A rewrite or plan transformation violated a soundness invariant.

    Raised by :mod:`repro.analysis` when verification is enabled
    (``Database.run(verify=True)`` or ``REPRO_VERIFY=1``). Carries the
    offending rule name, the pretty-printed before/after terms (or
    plans), the list of violated invariants, and the source span of the
    rewritten term when one is attached.
    """

    def __init__(
        self,
        rule: str,
        before,
        after=None,
        violations: Sequence = (),
        span: "Optional[Span]" = None,
    ) -> None:
        self.rule = rule
        self.before = before
        self.after = after
        self.violations = list(violations)
        self.span = span
        summary = "; ".join(str(v) for v in self.violations) or "invariant violated"
        lines = [f"unsound rewrite by {rule}: {summary}"]
        lines.append(f"  before: {before}")
        if after is not None:
            lines.append(f"  after:  {after}")
        if span is not None:
            lines.append(f"  at {span}")
        super().__init__("\n".join(lines))


class PlanError(ReproError):
    """Algebra plan construction or execution failed."""


class ObjectStoreError(ReproError):
    """An object operation (deref, assign) used an invalid OID."""


class VectorError(ReproError):
    """A vector comprehension or vector value operation is invalid."""


class DatabaseError(ReproError):
    """The database facade was misused (unknown extent, bad load)."""


class TelemetryError(ReproError):
    """The metrics registry was misused (kind/label mismatch, bad
    quantile, invalid ``Database(telemetry=...)`` argument)."""


class LintError(ReproError):
    """Strict mode rejected a query because the linter found errors.

    ``diagnostics`` holds every :class:`repro.lint.Diagnostic` the
    analyzer produced (warnings included); the message summarizes the
    error-severity ones.
    """

    def __init__(self, diagnostics: Sequence) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if getattr(d, "severity", "") == "error"]
        head = str(errors[0]) if errors else str(self.diagnostics[0])
        extra = len(errors) - 1
        suffix = f" (and {extra} more error{'s' if extra > 1 else ''})" if extra > 0 else ""
        super().__init__(f"lint failed: {head}{suffix}")
