"""Exception hierarchy for the monoid calculus library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class. Each pipeline stage has its own
subclass, which keeps failures attributable: a parse failure is a
:class:`OQLSyntaxError`, a C/I violation is a :class:`WellFormednessError`,
and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MonoidError(ReproError):
    """A monoid was constructed or used inconsistently."""


class UnknownMonoidError(MonoidError):
    """A monoid name was looked up that is not in the registry."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        self.known = known or []
        hint = f" (known: {', '.join(sorted(self.known))})" if self.known else ""
        super().__init__(f"unknown monoid {name!r}{hint}")


class WellFormednessError(MonoidError):
    """A homomorphism or comprehension violates the C/I restriction.

    The paper's central static check: ``hom[N -> M]`` is well formed only
    when ``props(N)`` is a subset of ``props(M)``. For example a
    homomorphism from ``set`` (commutative and idempotent) to ``sum``
    (commutative but not idempotent) is rejected, which is what prevents
    the classic ``1 = hom[set->sum](\\x.1) {a}`` inconsistency.
    """


class CalculusError(ReproError):
    """A calculus term is malformed (arity, unbound variable, bad field)."""


class UnboundVariableError(CalculusError):
    """A variable occurs free where a binding was required."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unbound variable {name!r}")


class EvaluationError(ReproError):
    """The reference evaluator hit a dynamic error (bad operand, etc.)."""


class TypingError(ReproError):
    """Static type inference or checking failed."""


class SchemaError(ReproError):
    """A schema declaration is inconsistent (duplicate class, bad extent)."""


class OQLError(ReproError):
    """Base class for OQL front-end failures."""


class OQLSyntaxError(OQLError):
    """The OQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} at line {line}, column {column}"
        super().__init__(message)


class TranslationError(OQLError):
    """An OQL construct could not be mapped into the calculus."""


class NormalizationError(ReproError):
    """The rewrite engine detected an internal inconsistency."""


class PlanError(ReproError):
    """Algebra plan construction or execution failed."""


class ObjectStoreError(ReproError):
    """An object operation (deref, assign) used an invalid OID."""


class VectorError(ReproError):
    """A vector comprehension or vector value operation is invalid."""


class DatabaseError(ReproError):
    """The database facade was misused (unknown extent, bad load)."""
