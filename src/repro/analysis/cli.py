"""``python -m repro verify`` — run queries with rewrite verification on.

Each argument is an OQL file (``;``-separated queries, same conventions
as ``repro lint``) or, when no file of that name exists, a literal OQL
query. Every query is executed against a demo database with
``verify=True``: each normalization-rule fire and optimizer rewrite is
checked against the soundness invariants, and one line per query
reports how many rewrites were verified.

Exit status: 0 when every query ran with all rewrites verified; 1 when
any query tripped a :class:`~repro.errors.VerificationError` or failed
outright.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Callable, Optional

from repro.db.database import Database
from repro.errors import ReproError, VerificationError
from repro.lint.cli import split_queries


def _make_database(schema_name: str) -> Database:
    from repro.db.database import demo_company_database, demo_travel_database

    if schema_name == "company":
        return demo_company_database()
    return demo_travel_database()


def _short(text: str, limit: int = 60) -> str:
    flat = " ".join(text.split())
    return flat if len(flat) <= limit else flat[: limit - 3] + "..."


def verify_query(db: Database, text: str) -> dict:
    """Run one query verified; return a report document (never raises)."""
    doc: dict = {"query": " ".join(text.split())}
    try:
        result = db.run_detailed(text, verify=True)
    except VerificationError as err:
        doc["ok"] = False
        doc["error"] = "verification"
        doc["rule"] = err.rule
        doc["violations"] = [str(v) for v in err.violations]
        doc["detail"] = str(err)
        return doc
    except ReproError as err:
        doc["ok"] = False
        doc["error"] = type(err).__name__
        doc["detail"] = str(err)
        return doc
    doc["ok"] = True
    doc["rewrites"] = len(result.trace)
    doc["rules"] = result.trace.rule_counts()
    doc["engine"] = result.engine
    return doc


def main(argv: Optional[list[str]] = None, out: Callable[[str], None] = print) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Execute OQL with the rewrite-soundness verifier enabled.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="OQL files (';'-separated queries) or literal queries",
    )
    parser.add_argument(
        "--schema",
        choices=("travel", "company"),
        default="travel",
        help="demo database to run against (default: travel)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON array of per-target reports instead of text",
    )
    args = parser.parse_args(argv)

    db = _make_database(args.schema)
    documents = []
    exit_code = 0
    for target in args.targets:
        if os.path.exists(target):
            label = target
            try:
                with open(target, encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as err:
                out(f"error: cannot read {target}: {err}")
                exit_code = 1
                continue
            queries = [
                (f"{target}:{line0 + 1}", text)
                for line0, _, text in split_queries(source)
            ]
        else:
            label = "<query>"
            queries = [(label, target)]
        file_doc = {"target": label, "queries": []}
        for where, text in queries:
            doc = verify_query(db, text)
            file_doc["queries"].append(doc)
            if doc["ok"]:
                if not args.json:
                    out(
                        f"ok {where}: {doc['rewrites']} rewrite(s) verified "
                        f"({doc['engine']} engine) -- {_short(text)}"
                    )
            else:
                exit_code = 1
                if not args.json:
                    out(f"FAIL {where}: {doc['detail']}")
        documents.append(file_doc)
    if args.json:
        out(json.dumps(documents, indent=2))
    return exit_code
