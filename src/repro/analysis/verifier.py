"""The rewrite-soundness verifier and its enablement switches.

When verification is on, the normalization engine and the algebra
optimizer snapshot every rule fire and hand the before/after pair to
:class:`RewriteVerifier`, which runs the invariant catalog from
:mod:`repro.analysis.invariants` plus an alpha-invariance probe, and
raises :class:`~repro.errors.VerificationError` on the first unsound
rewrite.

Verification is off by default and the off path is byte-identical to a
build without this module (no snapshots, no checks). Three switches,
in precedence order:

1. an explicit ``verify=`` argument to ``normalize_with_trace`` /
   ``Optimizer`` / ``Database.run``;
2. the :func:`verification` context manager (used by ``Database.run``
   to cover the internal re-normalization inside ``build_plan``);
3. the ``REPRO_VERIFY=1`` environment variable (used by CI's
   verify-mode job).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.calculus.ast import Term
from repro.calculus.traversal import alpha_equal
from repro.errors import VerificationError
from repro.span import span_of
from repro.types.types import Type

from repro.analysis.dataflow import alpha_rename
from repro.analysis.invariants import (
    Violation,
    check_coherence,
    check_effects,
    check_scope,
    check_types,
)

# ---------------------------------------------------------------------------
# Enablement
# ---------------------------------------------------------------------------

#: Session-level override installed by :func:`verification`; ``None``
#: defers to the environment.
_OVERRIDE: Optional[bool] = None

_FALSEY = ("", "0", "false", "off", "no")


def verification_enabled() -> bool:
    """Is rewrite verification currently on?"""
    if _OVERRIDE is not None:
        return _OVERRIDE
    return os.environ.get("REPRO_VERIFY", "").strip().lower() not in _FALSEY


@contextmanager
def verification(enabled: Optional[bool]) -> Iterator[None]:
    """Force verification on or off for the dynamic extent of the block.

    ``verification(None)`` is a no-op (the environment keeps deciding),
    so callers can thread an optional ``verify=`` parameter through
    without special-casing.
    """
    global _OVERRIDE
    saved = _OVERRIDE
    if enabled is not None:
        _OVERRIDE = enabled
    try:
        yield
    finally:
        _OVERRIDE = saved


def resolve_verify(verify: Optional[bool]) -> bool:
    """An explicit flag wins; ``None`` falls back to the global switch."""
    return verification_enabled() if verify is None else verify


# ---------------------------------------------------------------------------
# The verifier
# ---------------------------------------------------------------------------


class RewriteVerifier:
    """Checks every rule fire against the invariant catalog.

    ``type_env`` optionally supplies known types for free variables
    (tightening the type-preservation check); ``alpha_check`` controls
    the re-application probe, which costs one extra rule application
    per fire.
    """

    def __init__(
        self,
        type_env: Optional[dict[str, Type]] = None,
        alpha_check: bool = True,
    ) -> None:
        self.type_env = type_env
        self.alpha_check = alpha_check
        #: Fires checked so far — lets callers report verification coverage.
        self.checked = 0

    def check_rewrite(self, rule: Any, before: Term, after: Term) -> None:
        """Raise :class:`VerificationError` if ``rule``'s fire was unsound."""
        name = getattr(rule, "name", str(rule))
        violations: list[Violation] = []
        violations += check_scope(before, after)
        violations += check_effects(before, after)
        violations += check_coherence(before, after)
        violations += check_types(before, after, self.type_env)
        if self.alpha_check and hasattr(rule, "apply"):
            violations += self._check_alpha(rule, before, after)
        self.checked += 1
        registry = _telemetry_registry()
        if registry is not None:
            from repro.obs.telemetry.instrument import (
                record_verifier_check,
                record_verifier_violation,
            )

            record_verifier_check(registry, name)
            for violation in violations:
                record_verifier_violation(registry, name, violation.invariant)
        if violations:
            raise VerificationError(
                name, before, after, violations, span=span_of(before)
            )

    def _check_alpha(self, rule: Any, before: Term, after: Term) -> list[Violation]:
        """Re-apply the rule to a freshened alpha-variant of the input.

        A correct rule is insensitive to the spelling of bound
        variables: it must still fire, and produce an alpha-equivalent
        result. A rule that captures a variable (naive substitution)
        or keys on concrete bound names fails this probe.
        """
        renamed = alpha_rename(before)
        try:
            redone = rule.apply(renamed)
        except Exception as err:  # noqa: BLE001 - any crash is a finding
            return [
                Violation(
                    "alpha",
                    f"rule crashed on an alpha-variant of its input: {err!r}",
                )
            ]
        if redone is None:
            return [
                Violation(
                    "alpha",
                    "rule no longer fires on an alpha-variant of its input "
                    "(matching depends on bound-variable names)",
                )
            ]
        if not alpha_equal(redone, after):
            return [
                Violation(
                    "alpha",
                    "result differs on an alpha-variant of the input: "
                    "bound-variable capture or name dependence",
                )
            ]
        return []


def _telemetry_registry():
    """The active telemetry registry, or None (lazy: the verifier must
    not import the telemetry package when telemetry was never loaded)."""
    import sys

    registry_mod = sys.modules.get("repro.obs.telemetry.registry")
    if registry_mod is None:
        return None
    return registry_mod.current_registry()


# ---------------------------------------------------------------------------
# Parallel-execution equivalence
# ---------------------------------------------------------------------------


def check_parallel_equivalence(plan: Any, serial_value: Any, parallel_value: Any) -> None:
    """Verify a parallel execution produced the serial result.

    Called by :class:`repro.parallel.ParallelExecutor` when verification
    is on: the plan is re-run serially and both values compared. Floats
    are compared approximately — parallel partial folds reassociate the
    monoid ``merge``, and float addition is associative only up to
    rounding, so a last-bit difference on a ``sum`` of floats is the
    expected cost of reassociation, not an unsound execution. Every
    other difference raises :class:`~repro.errors.VerificationError`.
    """
    if _values_equivalent(serial_value, parallel_value):
        return
    raise VerificationError(
        "parallel-equivalence",
        serial_value,
        parallel_value,
        [
            Violation(
                "parallel-equivalence",
                "parallel execution differs from the serial fold "
                f"(plan root: {type(plan).__name__})",
            )
        ],
    )


def _values_equivalent(a: Any, b: Any) -> bool:
    """Structural equality with float tolerance (see above)."""
    import math

    if a == b:
        # Fast path; also covers hash-based containers whose float
        # members happen to agree exactly.
        return True
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            return False
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    from repro.values import Bag, OrderedSet, Record, Vector, canonical_key

    if isinstance(a, (tuple, list, OrderedSet)) and isinstance(
        b, (tuple, list, OrderedSet)
    ):
        return len(a) == len(b) and all(
            _values_equivalent(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, (frozenset, Bag)) and isinstance(b, (frozenset, Bag)):
        # Canonical order lines elements up so float members still get
        # the tolerant element-wise comparison.
        xs = sorted(a, key=canonical_key)
        ys = sorted(b, key=canonical_key)
        return len(xs) == len(ys) and all(
            _values_equivalent(x, y) for x, y in zip(xs, ys)
        )
    if isinstance(a, Record) and isinstance(b, Record):
        return set(a.keys()) == set(b.keys()) and all(
            _values_equivalent(a[k], b[k]) for k in a.keys()
        )
    if isinstance(a, Vector) and isinstance(b, Vector):
        return len(a) == len(b) and all(
            _values_equivalent(x, y) for x, y in zip(a.to_list(), b.to_list())
        )
    return False
