"""The rewrite invariant catalog.

Each checker compares a term before and after a rewrite and returns the
:class:`Violation`\\ s it finds (empty list = invariant holds). The
catalog encodes what "sound" means for a Table 3 rule fire:

``scope``
    No free variable appears in the result that was not free in the
    input — a rewrite may *drop* free occurrences (dead code) but never
    invent one, which is what a bound variable escaping its binder
    looks like.
``effects``
    The number of effectful operations (``new``, ``:=``, ``+=``) does
    not grow: duplicating an effect changes observable behavior.
``coherence``
    The §3 restriction ``props(N) ⊆ props(M)`` on every generator and
    homomorphism whose source monoid is syntactically known. Compared
    as *non-introduction*: the result may carry over a latent violation
    already present in the input (inner qualifiers migrate outward
    under N9), but a rewrite must never create a violation over a
    source monoid that was clean before.
``type``
    When both sides are inferable under a permissive environment (all
    free variables typed ``any``), the inferred types must stay
    compatible. Inference is gradual, so this is best-effort — but it
    pins the collection monoid of the result, which is exactly what a
    set-vs-bag bug changes.

The fifth invariant — alpha-invariance — needs to *re-apply* the rule
and so lives in :class:`repro.analysis.verifier.RewriteVerifier`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.calculus.ast import (
    Comprehension,
    Empty,
    Generator,
    Hom,
    Merge,
    MonoidRef,
    Singleton,
    Term,
)
from repro.calculus.ast import EFFECTFUL_NODES
from repro.calculus.traversal import free_vars
from repro.errors import ReproError, TypingError, WellFormednessError
from repro.types.infer import (
    MONOID_PROPS,
    TypeChecker,
    check_generator_well_formed,
    compatible,
    is_collection_monoid,
)
from repro.types.types import ANY, Type

from repro.analysis.dataflow import scoped_subterms


@dataclass(frozen=True)
class Violation:
    """One violated invariant, named and explained."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


# ---------------------------------------------------------------------------
# Scope
# ---------------------------------------------------------------------------


def check_scope(before: Term, after: Term) -> list[Violation]:
    """No free variable may escape into existence."""
    escaped = free_vars(after) - free_vars(before)
    if escaped:
        return [
            Violation(
                "scope",
                f"free variable(s) {sorted(escaped)} appear in the result "
                "but were bound (or absent) in the input",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Effects
# ---------------------------------------------------------------------------


def effect_count(term: Term) -> int:
    """Number of effectful nodes (``new``/``:=``/``+=``) in ``term``."""
    return sum(
        1 for sub, _ in scoped_subterms(term) if isinstance(sub, EFFECTFUL_NODES)
    )


def check_effects(before: Term, after: Term) -> list[Violation]:
    """A rewrite must not duplicate heap effects."""
    b, a = effect_count(before), effect_count(after)
    if a > b:
        return [
            Violation(
                "effects",
                f"effectful operations duplicated: {b} before, {a} after",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Monoid coherence (§3)
# ---------------------------------------------------------------------------


def _syntactic_source_monoid(term: Term) -> Optional[str]:
    """The collection monoid a generator source evaluates into, when the
    source is a literal monoid construction (zero/unit/merge/comprehension)."""
    if isinstance(term, (Empty, Singleton, Merge, Comprehension)):
        ref: MonoidRef = term.monoid
        if ref.is_vector:
            return None
        return ref.name
    return None


def coherence_violations(term: Term) -> frozenset[str]:
    """Source-monoid names over which ``term`` breaks the §3 restriction.

    Keyed by source monoid name rather than position: rules like N9
    shuffle qualifier positions while preserving which monoids flow
    into which, so positional keys would misreport a migrated latent
    violation as a fresh one.
    """
    bad: set[str] = set()
    for sub, _ in scoped_subterms(term):
        if isinstance(sub, Comprehension):
            if sub.monoid.is_vector:
                continue
            for qual in sub.qualifiers:
                if not isinstance(qual, Generator):
                    continue
                src = _syntactic_source_monoid(qual.source)
                if src is None or not is_collection_monoid(src):
                    continue
                try:
                    check_generator_well_formed(src, sub.monoid)
                except WellFormednessError:
                    bad.add(src)
                except TypingError:
                    pass  # output monoid not statically known
        elif isinstance(sub, Hom):
            src_name = sub.source.name
            tgt_name = sub.target.name
            if (
                not sub.source.is_vector
                and not sub.target.is_vector
                and is_collection_monoid(src_name)
                and tgt_name in MONOID_PROPS
            ):
                try:
                    check_generator_well_formed(src_name, sub.target)
                except WellFormednessError:
                    bad.add(src_name)
                except TypingError:
                    pass
    return frozenset(bad)


def check_coherence(before: Term, after: Term) -> list[Violation]:
    """A rewrite must not introduce a §3 coherence violation."""
    introduced = coherence_violations(after) - coherence_violations(before)
    if introduced:
        return [
            Violation(
                "coherence",
                "props(N) ⊆ props(M) newly violated for generator source "
                f"monoid(s) {sorted(introduced)}",
            )
        ]
    return []


# ---------------------------------------------------------------------------
# Type preservation
# ---------------------------------------------------------------------------


def check_types(
    before: Term, after: Term, type_env: Optional[dict[str, Type]] = None
) -> list[Violation]:
    """Inferred types must stay compatible when both sides are inferable.

    Free variables default to ``any``. When either side fails to infer
    the check is skipped: under gradual typing a sound rewrite can
    surface a latent type error (beta reduction exposing ``'s' + 1``),
    and punishing that would make the verifier unusable on unchecked
    terms.
    """
    names = free_vars(before) | free_vars(after)
    env: dict[str, Type] = {name: ANY for name in names}
    if type_env:
        env.update({k: v for k, v in type_env.items() if k in names})
    try:
        before_ty = TypeChecker().infer(before, env)
        after_ty = TypeChecker().infer(after, env)
    except ReproError:
        return []
    except (KeyError, IndexError, RecursionError):  # defensive: checker bugs
        return []
    if not compatible(before_ty, after_ty):
        return [
            Violation(
                "type",
                f"inferred type changed: {before_ty} before, {after_ty} after",
            )
        ]
    return []
