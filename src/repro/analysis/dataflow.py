"""Binding-aware dataflow analyses over calculus terms.

The calculus already knows how to compute free-variable *sets*
(:func:`repro.calculus.traversal.free_vars`); this module adds the
counting and def-use layer shared by the rest of the system:

- :func:`scoped_subterms` — the one binding-aware walk everything else
  is built on, yielding each subterm together with the names bound
  around it;
- :func:`use_count` / :func:`free_var_counts` — occurrence counting,
  used by the normalizer's duplication guards;
- :func:`def_use` — every binder in a term with its kind, binding site
  and use count, used by the lint passes;
- :func:`alpha_rename` — a fully freshened alpha-variant of a term,
  used by the rewrite verifier's capture check.

All analyses respect the left-to-right scoping of comprehension
qualifiers and descend into monoid key/size terms, mirroring
``traversal._free`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.calculus.ast import (
    Apply,
    Assign,
    Bind,
    BinOp,
    Call,
    Comprehension,
    Const,
    Deref,
    Empty,
    Filter,
    Generator,
    Hom,
    If,
    Index,
    Lambda,
    Let,
    Merge,
    MethodCall,
    MonoidRef,
    New,
    Proj,
    Qualifier,
    RecordCons,
    Singleton,
    Term,
    TupleCons,
    UnOp,
    Update,
    Var,
)
from repro.calculus.traversal import children, fresh_var
from repro.errors import CalculusError
from repro.span import Span, span_of

# ---------------------------------------------------------------------------
# Scoped traversal
# ---------------------------------------------------------------------------


def scoped_subterms(term: Term) -> Iterator[tuple[Term, frozenset[str]]]:
    """Yield ``(subterm, bound)`` pairs, pre-order.

    ``bound`` is the set of variable names whose binders enclose the
    subterm's position — so a ``Var`` occurrence is free exactly when
    its name is not in ``bound``.

    >>> from repro.calculus.builders import var, comp, gen
    >>> term = comp("set", var("x"), [gen("x", var("db"))])
    >>> [(str(t), sorted(b)) for t, b in scoped_subterms(term)]
    [('set{ x | x <- db }', []), ('db', []), ('x', ['x'])]
    """
    yield from _scoped(term, frozenset())


def _scoped_monoid(
    ref: MonoidRef, bound: frozenset[str]
) -> Iterator[tuple[Term, frozenset[str]]]:
    if ref.key is not None:
        yield from _scoped(ref.key, bound)
    if ref.size is not None:
        yield from _scoped(ref.size, bound)
    if ref.element is not None:
        yield from _scoped_monoid(ref.element, bound)


def _scoped(
    term: Term, bound: frozenset[str]
) -> Iterator[tuple[Term, frozenset[str]]]:
    yield term, bound
    if isinstance(term, (Const, Var)):
        return
    if isinstance(term, Lambda):
        yield from _scoped(term.body, bound | {term.param})
        return
    if isinstance(term, Apply):
        yield from _scoped(term.fn, bound)
        yield from _scoped(term.arg, bound)
        return
    if isinstance(term, Let):
        yield from _scoped(term.value, bound)
        yield from _scoped(term.body, bound | {term.var})
        return
    if isinstance(term, RecordCons):
        for _, value in term.fields:
            yield from _scoped(value, bound)
        return
    if isinstance(term, TupleCons):
        for item in term.items:
            yield from _scoped(item, bound)
        return
    if isinstance(term, Proj):
        yield from _scoped(term.base, bound)
        return
    if isinstance(term, Index):
        yield from _scoped(term.base, bound)
        yield from _scoped(term.index, bound)
        return
    if isinstance(term, BinOp):
        yield from _scoped(term.left, bound)
        yield from _scoped(term.right, bound)
        return
    if isinstance(term, UnOp):
        yield from _scoped(term.operand, bound)
        return
    if isinstance(term, If):
        yield from _scoped(term.cond, bound)
        yield from _scoped(term.then_branch, bound)
        yield from _scoped(term.else_branch, bound)
        return
    if isinstance(term, Empty):
        yield from _scoped_monoid(term.monoid, bound)
        return
    if isinstance(term, Singleton):
        yield from _scoped_monoid(term.monoid, bound)
        yield from _scoped(term.element, bound)
        if term.index is not None:
            yield from _scoped(term.index, bound)
        return
    if isinstance(term, Merge):
        yield from _scoped_monoid(term.monoid, bound)
        yield from _scoped(term.left, bound)
        yield from _scoped(term.right, bound)
        return
    if isinstance(term, Comprehension):
        yield from _scoped_monoid(term.monoid, bound)
        inner = bound
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                yield from _scoped(qual.source, inner)
                inner = inner | {qual.var}
                if qual.index_var is not None:
                    inner = inner | {qual.index_var}
            elif isinstance(qual, Bind):
                yield from _scoped(qual.value, inner)
                inner = inner | {qual.var}
            else:
                yield from _scoped(qual.pred, inner)
        yield from _scoped(term.head, inner)
        return
    if isinstance(term, Hom):
        yield from _scoped_monoid(term.source, bound)
        yield from _scoped_monoid(term.target, bound)
        yield from _scoped(term.body, bound | {term.var})
        yield from _scoped(term.arg, bound)
        return
    if isinstance(term, Call):
        for arg in term.args:
            yield from _scoped(arg, bound)
        return
    if isinstance(term, MethodCall):
        yield from _scoped(term.base, bound)
        for arg in term.args:
            yield from _scoped(arg, bound)
        return
    if isinstance(term, New):
        yield from _scoped(term.state, bound)
        return
    if isinstance(term, Deref):
        yield from _scoped(term.target, bound)
        return
    if isinstance(term, Assign):
        yield from _scoped(term.target, bound)
        yield from _scoped(term.value, bound)
        return
    if isinstance(term, Update):
        yield from _scoped(term.base, bound)
        yield from _scoped(term.value, bound)
        return
    raise CalculusError(f"scoped_subterms: unknown term {type(term).__name__}")


# ---------------------------------------------------------------------------
# Occurrence counting
# ---------------------------------------------------------------------------


def use_count(term: Term, name: str) -> int:
    """Number of *free* occurrences of ``name`` in ``term``.

    Shadowing-aware: occurrences under a binder of the same name do not
    count.

    >>> from repro.calculus.builders import var, lam
    >>> use_count(BinOp("+", var("x"), lam("x", var("x"))), "x")
    1
    """
    return sum(
        1
        for sub, bound in _scoped(term, frozenset())
        if isinstance(sub, Var) and sub.name == name and name not in bound
    )


def free_var_counts(term: Term) -> dict[str, int]:
    """Occurrence counts for every free variable of ``term``."""
    counts: dict[str, int] = {}
    for sub, bound in _scoped(term, frozenset()):
        if isinstance(sub, Var) and sub.name not in bound:
            counts[sub.name] = counts.get(sub.name, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Def-use chains
# ---------------------------------------------------------------------------


@dataclass
class BindingInfo:
    """One binder in a term: where a name is introduced and how often used."""

    name: str
    kind: str  # 'lambda' | 'let' | 'hom' | 'generator' | 'generator-index' | 'bind'
    binder: Any  # the Term or Qualifier that introduced the binding
    uses: int = 0
    span: Optional[Span] = None


@dataclass
class DefUse:
    """The def-use summary of a term: all binders plus free-name counts."""

    bindings: list[BindingInfo] = field(default_factory=list)
    free: dict[str, int] = field(default_factory=dict)

    def unused(self) -> list[BindingInfo]:
        """Binders whose variable is never referenced."""
        return [b for b in self.bindings if b.uses == 0]

    def for_name(self, name: str) -> list[BindingInfo]:
        return [b for b in self.bindings if b.name == name]


def def_use(term: Term) -> DefUse:
    """Compute def-use chains: every binder with its use count.

    Uses resolve to the *innermost* enclosing binder of that name, so
    shadowed binders do not absorb inner uses.
    """
    result = DefUse()
    _du(term, {}, result)
    return result


def _du_bind(
    env: dict[str, BindingInfo],
    result: DefUse,
    name: str,
    kind: str,
    binder: Any,
) -> dict[str, BindingInfo]:
    info = BindingInfo(name, kind, binder, span=span_of(binder))
    result.bindings.append(info)
    return {**env, name: info}


def _du_monoid(ref: MonoidRef, env: dict[str, BindingInfo], result: DefUse) -> None:
    if ref.key is not None:
        _du(ref.key, env, result)
    if ref.size is not None:
        _du(ref.size, env, result)
    if ref.element is not None:
        _du_monoid(ref.element, env, result)


def _du(term: Term, env: dict[str, BindingInfo], result: DefUse) -> None:
    if isinstance(term, Var):
        info = env.get(term.name)
        if info is not None:
            info.uses += 1
        else:
            result.free[term.name] = result.free.get(term.name, 0) + 1
        return
    if isinstance(term, Lambda):
        _du(term.body, _du_bind(env, result, term.param, "lambda", term), result)
        return
    if isinstance(term, Let):
        _du(term.value, env, result)
        _du(term.body, _du_bind(env, result, term.var, "let", term), result)
        return
    if isinstance(term, Comprehension):
        _du_monoid(term.monoid, env, result)
        inner = env
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                _du(qual.source, inner, result)
                inner = _du_bind(inner, result, qual.var, "generator", qual)
                if qual.index_var is not None:
                    inner = _du_bind(
                        inner, result, qual.index_var, "generator-index", qual
                    )
            elif isinstance(qual, Bind):
                _du(qual.value, inner, result)
                inner = _du_bind(inner, result, qual.var, "bind", qual)
            else:
                _du(qual.pred, inner, result)
        _du(term.head, inner, result)
        return
    if isinstance(term, Hom):
        _du_monoid(term.source, env, result)
        _du_monoid(term.target, env, result)
        _du(term.body, _du_bind(env, result, term.var, "hom", term), result)
        _du(term.arg, env, result)
        return
    # Non-binding nodes: walk direct children under the same environment
    # (``children`` already includes monoid key/size terms).
    for child in children(term):
        _du(child, env, result)


# ---------------------------------------------------------------------------
# Alpha renaming
# ---------------------------------------------------------------------------


def alpha_rename(term: Term) -> Term:
    """A fully freshened alpha-variant: every binder gets a fresh name.

    The result is ``alpha_equal`` to the input but shares no bound
    names with it (or with anything else — fresh names are globally
    unique). The rewrite verifier uses this to detect rules whose
    output depends on the spelling of bound variables, i.e. capture
    bugs.
    """
    return _rename(term, {})


def _rename_monoid(ref: MonoidRef, env: dict[str, str]) -> MonoidRef:
    key = _rename(ref.key, env) if ref.key is not None else None
    size = _rename(ref.size, env) if ref.size is not None else None
    element = _rename_monoid(ref.element, env) if ref.element is not None else None
    if key is ref.key and size is ref.size and element is ref.element:
        return ref
    return MonoidRef(ref.name, key=key, element=element, size=size)


def _freshened(name: str) -> str:
    return fresh_var(name.split("~")[0])


def _rename(term: Term, env: dict[str, str]) -> Term:
    if isinstance(term, Const):
        return term
    if isinstance(term, Var):
        return Var(env[term.name]) if term.name in env else term
    if isinstance(term, Lambda):
        new = _freshened(term.param)
        return Lambda(new, _rename(term.body, {**env, term.param: new}))
    if isinstance(term, Apply):
        return Apply(_rename(term.fn, env), _rename(term.arg, env))
    if isinstance(term, Let):
        new = _freshened(term.var)
        return Let(
            new, _rename(term.value, env), _rename(term.body, {**env, term.var: new})
        )
    if isinstance(term, RecordCons):
        return RecordCons(
            tuple((name, _rename(value, env)) for name, value in term.fields)
        )
    if isinstance(term, TupleCons):
        return TupleCons(tuple(_rename(item, env) for item in term.items))
    if isinstance(term, Proj):
        return Proj(_rename(term.base, env), term.name)
    if isinstance(term, Index):
        return Index(_rename(term.base, env), _rename(term.index, env))
    if isinstance(term, BinOp):
        return BinOp(term.op, _rename(term.left, env), _rename(term.right, env))
    if isinstance(term, UnOp):
        return UnOp(term.op, _rename(term.operand, env))
    if isinstance(term, If):
        return If(
            _rename(term.cond, env),
            _rename(term.then_branch, env),
            _rename(term.else_branch, env),
        )
    if isinstance(term, Empty):
        return Empty(_rename_monoid(term.monoid, env))
    if isinstance(term, Singleton):
        return Singleton(
            _rename_monoid(term.monoid, env),
            _rename(term.element, env),
            _rename(term.index, env) if term.index is not None else None,
        )
    if isinstance(term, Merge):
        return Merge(
            _rename_monoid(term.monoid, env),
            _rename(term.left, env),
            _rename(term.right, env),
        )
    if isinstance(term, Comprehension):
        inner = dict(env)
        quals: list[Qualifier] = []
        for qual in term.qualifiers:
            if isinstance(qual, Generator):
                source = _rename(qual.source, inner)
                new = _freshened(qual.var)
                inner[qual.var] = new
                index_var = qual.index_var
                if index_var is not None:
                    new_index = _freshened(index_var)
                    inner[index_var] = new_index
                    index_var = new_index
                quals.append(Generator(new, source, index_var))
            elif isinstance(qual, Bind):
                value = _rename(qual.value, inner)
                new = _freshened(qual.var)
                inner[qual.var] = new
                quals.append(Bind(new, value))
            else:
                quals.append(Filter(_rename(qual.pred, inner)))
        return Comprehension(
            _rename_monoid(term.monoid, env), _rename(term.head, inner), tuple(quals)
        )
    if isinstance(term, Hom):
        new = _freshened(term.var)
        return Hom(
            _rename_monoid(term.source, env),
            _rename_monoid(term.target, env),
            new,
            _rename(term.body, {**env, term.var: new}),
            _rename(term.arg, env),
        )
    if isinstance(term, Call):
        return Call(term.name, tuple(_rename(a, env) for a in term.args))
    if isinstance(term, MethodCall):
        return MethodCall(
            _rename(term.base, env),
            term.name,
            tuple(_rename(a, env) for a in term.args),
        )
    if isinstance(term, New):
        return New(_rename(term.state, env))
    if isinstance(term, Deref):
        return Deref(_rename(term.target, env))
    if isinstance(term, Assign):
        return Assign(_rename(term.target, env), _rename(term.value, env))
    if isinstance(term, Update):
        return Update(
            _rename(term.base, env),
            term.field_name,
            term.op,
            _rename(term.value, env),
        )
    raise CalculusError(f"alpha_rename: unknown term {type(term).__name__}")
