"""Physical-plan schema and scoping verification.

A logical plan is well-scoped when every operator's embedded terms
(predicates, paths, keys, heads) reference only plan variables that the
operator's input actually binds. The checker walks the tree bottom-up,
tracking the column set each operator emits, and reports:

- a predicate/path/key/head using a plan variable its input does not
  bind (the classic sunk-too-deep selection bug);
- a ``Join`` whose sides bind overlapping variables, or whose hash keys
  are not evaluable on their own side;
- an ``IndexScan`` key referencing any plan variable (keys are
  evaluated once, before the stream starts);
- an operator rebinding a variable some other operator already binds.

Free variables that are *not* bound anywhere in the plan (extent names,
outer constants) are ignored — the checker is about plan-internal
scoping, not name resolution.
"""

from __future__ import annotations

from repro.algebra.ops import (
    IndexScan,
    Join,
    Nest,
    PlanNode,
    Reduce,
    Scan,
    SelectOp,
    Unnest,
)
from repro.calculus.traversal import free_vars
from repro.errors import VerificationError

from repro.analysis.invariants import Violation


def plan_variables(plan: PlanNode) -> frozenset[str]:
    """Every variable bound by some operator in the plan tree."""
    out: set[str] = set()

    def walk(node: PlanNode) -> None:
        if isinstance(node, Scan):
            out.add(node.var)
            if node.index_var:
                out.add(node.index_var)
        elif isinstance(node, IndexScan):
            out.add(node.var)
        elif isinstance(node, Unnest):
            out.add(node.var)
            if node.index_var:
                out.add(node.index_var)
        elif isinstance(node, Nest):
            out.update(label for label, _ in node.keys)
            out.add(node.part_var)
        for child in node.children():
            walk(child)

    walk(plan)
    return frozenset(out)


def verify_plan(plan: PlanNode, phase: str = "plan") -> None:
    """Raise :class:`VerificationError` if the plan is ill-scoped."""
    pvars = plan_variables(plan)
    problems: list[Violation] = []

    def uses(term) -> frozenset[str]:
        return free_vars(term) & pvars

    def check(node: PlanNode) -> frozenset[str]:
        if isinstance(node, Scan):
            bad = uses(node.source) - node.columns()
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"Scan {node.var} source references plan variable(s) "
                        f"{sorted(bad)}; scans must be independent",
                    )
                )
            return node.columns()
        if isinstance(node, IndexScan):
            bad = uses(node.key)
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"IndexScan {node.var} key references plan variable(s) "
                        f"{sorted(bad)}; keys are evaluated once, before the stream",
                    )
                )
            return node.columns()
        if isinstance(node, SelectOp):
            cols = check(node.child)
            bad = uses(node.pred) - cols
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"Select predicate {node.pred} uses {sorted(bad)} "
                        f"not bound by its input (columns: {sorted(cols)})",
                    )
                )
            return cols
        if isinstance(node, Join):
            left = check(node.left)
            right = check(node.right)
            overlap = left & right
            if overlap:
                problems.append(
                    Violation(
                        "plan-schema",
                        f"Join sides both bind {sorted(overlap)}",
                    )
                )
            for side_name, keys, cols in (
                ("left", node.left_keys, left),
                ("right", node.right_keys, right),
            ):
                for key in keys:
                    bad = uses(key) - cols
                    if bad:
                        problems.append(
                            Violation(
                                "plan-scope",
                                f"Join {side_name} key {key} uses {sorted(bad)} "
                                f"not bound on its side",
                            )
                        )
            if node.residual is not None:
                bad = uses(node.residual) - (left | right)
                if bad:
                    problems.append(
                        Violation(
                            "plan-scope",
                            f"Join residual {node.residual} uses {sorted(bad)} "
                            f"not bound by either side",
                        )
                    )
            return left | right
        if isinstance(node, Unnest):
            cols = check(node.child)
            bad = uses(node.path) - cols
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"Unnest path {node.path} uses {sorted(bad)} "
                        f"not bound by its input",
                    )
                )
            if node.var in cols:
                problems.append(
                    Violation(
                        "plan-schema",
                        f"Unnest rebinds {node.var!r}, already bound below",
                    )
                )
            return node.columns()
        if isinstance(node, Nest):
            cols = check(node.child)
            for label, term in node.keys:
                bad = uses(term) - cols
                if bad:
                    problems.append(
                        Violation(
                            "plan-scope",
                            f"Nest key {label}={term} uses {sorted(bad)} "
                            f"not bound by its input",
                        )
                    )
            bad = uses(node.part_head) - cols
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"Nest partition head {node.part_head} uses {sorted(bad)} "
                        f"not bound by its input",
                    )
                )
            return node.columns()
        if isinstance(node, Reduce):
            cols = check(node.child)
            bad = uses(node.head) - cols
            if bad:
                problems.append(
                    Violation(
                        "plan-scope",
                        f"Reduce head {node.head} uses {sorted(bad)} "
                        f"not bound by its input (columns: {sorted(cols)})",
                    )
                )
            return cols
        problems.append(
            Violation("plan-schema", f"unknown operator {type(node).__name__}")
        )
        return frozenset()

    check(plan)
    if problems:
        raise VerificationError(phase, plan, None, problems)


def check_plan_rewrite(phase: str, before: Reduce, after: Reduce) -> None:
    """Verify an optimizer rewrite: both plans well-scoped, and the
    output schema (columns, monoid, head) preserved."""
    verify_plan(before, phase=f"{phase}-input")
    verify_plan(after, phase=f"{phase}-output")
    problems: list[Violation] = []
    if before.child.columns() != after.child.columns():
        problems.append(
            Violation(
                "plan-schema",
                f"rewrite changed the column set: "
                f"{sorted(before.child.columns())} -> {sorted(after.child.columns())}",
            )
        )
    if before.monoid != after.monoid:
        problems.append(
            Violation(
                "plan-schema",
                f"rewrite changed the output monoid: {before.monoid} -> {after.monoid}",
            )
        )
    if before.head != after.head:
        problems.append(
            Violation(
                "plan-schema",
                f"rewrite changed the reduce head: {before.head} -> {after.head}",
            )
        )
    if problems:
        raise VerificationError(phase, before, after, problems)
