"""repro.analysis — IR dataflow analyses and rewrite-soundness verification.

Three layers:

- :mod:`repro.analysis.dataflow` — binding-aware traversal, use counts,
  def-use chains and alpha renaming, shared by the normalizer's guards,
  the lint passes and the verifier;
- :mod:`repro.analysis.invariants` — the invariant catalog a sound
  rewrite must satisfy (scope, effects, §3 monoid coherence, types);
- :mod:`repro.analysis.verifier` / :mod:`repro.analysis.plancheck` —
  the rewrite-soundness verifier hooked into the normalization engine
  and the plan optimizer, enabled by ``Database.run(verify=True)`` or
  ``REPRO_VERIFY=1``.

See ``docs/ANALYSIS.md`` for the full catalog and usage.
"""

from repro.analysis.dataflow import (
    BindingInfo,
    DefUse,
    alpha_rename,
    def_use,
    free_var_counts,
    scoped_subterms,
    use_count,
)
from repro.analysis.invariants import (
    Violation,
    check_coherence,
    check_effects,
    check_scope,
    check_types,
    coherence_violations,
    effect_count,
)
from repro.analysis.verifier import (
    RewriteVerifier,
    resolve_verify,
    verification,
    verification_enabled,
)

# The plan checker imports repro.algebra, whose package __init__ pulls
# in the normalizer — which itself uses this package's dataflow layer.
# Loading it lazily keeps `normalize.rules -> analysis.dataflow` cycle-free.
_PLANCHECK_EXPORTS = ("check_plan_rewrite", "plan_variables", "verify_plan")


def __getattr__(name: str):
    if name in _PLANCHECK_EXPORTS:
        from repro.analysis import plancheck

        return getattr(plancheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BindingInfo",
    "DefUse",
    "RewriteVerifier",
    "Violation",
    "alpha_rename",
    "check_coherence",
    "check_effects",
    "check_plan_rewrite",
    "check_scope",
    "check_types",
    "coherence_violations",
    "def_use",
    "effect_count",
    "free_var_counts",
    "plan_variables",
    "resolve_verify",
    "scoped_subterms",
    "use_count",
    "verification",
    "verification_enabled",
    "verify_plan",
]
