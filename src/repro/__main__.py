"""``python -m repro`` — the interactive OQL shell."""

import sys

from repro.repl import main

if __name__ == "__main__":
    sys.exit(main())
