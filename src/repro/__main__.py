"""``python -m repro`` — the interactive OQL shell, or subcommands.

``python -m repro lint file.oql [...]`` runs the static analyzer
(:mod:`repro.lint.cli`); ``python -m repro explain [--analyze] [--json]
file.oql [...]`` renders query plans with estimated — and, analyzed,
actual — cardinalities (:mod:`repro.obs.cli`); ``python -m repro
verify <file.oql | query> [...]`` executes queries with the
rewrite-soundness verifier on (:mod:`repro.analysis.cli`);
``python -m repro cache stats|clear`` reports query-cache counters
(:mod:`repro.cache.cli`); ``python -m repro metrics dump|top|serve``
exports fleet telemetry — Prometheus/OTLP/StatsD dumps, the hot-query
digest, or a live ``/metrics`` HTTP endpoint
(:mod:`repro.obs.telemetry.cli`); anything else starts the REPL.
"""

import sys


def main(argv=None):
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(args[1:])
    if args and args[0] == "explain":
        from repro.obs.cli import main as explain_main

        return explain_main(args[1:])
    if args and args[0] == "verify":
        from repro.analysis.cli import main as verify_main

        return verify_main(args[1:])
    if args and args[0] == "cache":
        from repro.cache.cli import main as cache_main

        return cache_main(args[1:])
    if args and args[0] == "metrics":
        from repro.obs.telemetry.cli import main as metrics_main

        return metrics_main(args[1:])
    from repro.repl import main as repl_main

    return repl_main(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`): not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
